package trace

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"math/rand"
	"strings"
	"testing"
)

// TestTraceHashStability: the content hash is the SHA-256 of the wire
// body, encode→decode→re-encode is a byte-level fixed point, and every
// route to the hash (WriteTo side effect, lazy Hash, decode) agrees.
func TestTraceHashStability(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		rec := NewRecorder()
		randomStream(rand.New(rand.NewSource(seed)), 2000, rec, rec)
		orig := rec.Finish()

		// Lazy hash before any encode.
		lazy := orig.Hash()
		data := encodeTrace(t, orig)
		if got := orig.Hash(); got != lazy {
			t.Fatalf("seed %d: Hash changed across WriteTo: %s → %s", seed, lazy, got)
		}
		body := data[:len(data)-hashTrailerLen]
		if want := Hash(sha256.Sum256(body)); lazy != want {
			t.Fatalf("seed %d: Hash %s != sha256(body) %s", seed, lazy, want)
		}

		dec, err := ReadTrace(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("seed %d: decode: %v", seed, err)
		}
		if dec.Hash() != lazy {
			t.Fatalf("seed %d: decoded hash %s != original %s", seed, dec.Hash(), lazy)
		}
		if re := encodeTrace(t, dec); !bytes.Equal(re, data) {
			t.Fatalf("seed %d: re-encode is not a fixed point (%d vs %d bytes)", seed, len(re), len(data))
		}
	}
}

// TestL2TraceHashStability: same fixed-point property for the filtered
// format, across non-default policies.
func TestL2TraceHashStability(t *testing.T) {
	l1 := l1Config()
	l1.Policy = "plru"
	f := NewL2Filter(l1)
	randomStream(rand.New(rand.NewSource(7)), 2000, f, f)
	orig := f.Trace()

	lazy := orig.Hash()
	data := encodeL2Trace(t, orig)
	body := data[:len(data)-hashTrailerLen]
	if want := Hash(sha256.Sum256(body)); lazy != want {
		t.Fatalf("Hash %s != sha256(body) %s", lazy, want)
	}
	dec, err := ReadL2Trace(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if dec.Hash() != lazy {
		t.Fatalf("decoded hash %s != original %s", dec.Hash(), lazy)
	}
	if re := encodeL2Trace(t, dec); !bytes.Equal(re, data) {
		t.Fatal("re-encode is not a fixed point")
	}
}

// TestTraceHashChunkingIndependence: the wire encoding (and therefore
// the content hash) carries no trace of the in-memory chunk layout —
// the same record stream split across different chunk boundaries is
// the same trace, and filters fed from either produce L2 traces with
// identical hashes.
func TestTraceHashChunkingIndependence(t *testing.T) {
	rec := NewRecorder()
	randomStream(rand.New(rand.NewSource(5)), 3000, rec, rec)
	orig := rec.Finish()

	// Rebuild the same record stream under a deliberately tiny chunk
	// size (the capture path uses chunkRecords-sized chunks).
	var flat []record
	for _, ch := range orig.chunks {
		flat = append(flat, ch...)
	}
	rechunked := &Trace{phaseNames: orig.phaseNames, records: orig.records, hcache: &hashCache{}}
	for len(flat) > 0 {
		n := 7
		if n > len(flat) {
			n = len(flat)
		}
		rechunked.chunks = append(rechunked.chunks, flat[:n:n])
		flat = flat[n:]
	}

	if !bytes.Equal(encodeTrace(t, orig), encodeTrace(t, rechunked)) {
		t.Fatal("chunk layout leaked into the wire encoding")
	}
	if orig.Hash() != rechunked.Hash() {
		t.Fatalf("chunk layout changed the hash: %s vs %s", orig.Hash(), rechunked.Hash())
	}

	filter := func(tr *Trace) Hash {
		f := NewL2Filter(l1Config())
		tr.Replay(f, f)
		return f.Trace().Hash()
	}
	if a, b := filter(orig), filter(rechunked); a != b {
		t.Fatalf("filtered L2 hash depends on capture chunking: %s vs %s", a, b)
	}
}

// TestTraceHashTrailerCorruption: a trailer whose stored digest does
// not match the body, a scrambled trailer magic, and a truncated
// trailer are all ErrBadFormat — never a silently wrong hash.
func TestTraceHashTrailerCorruption(t *testing.T) {
	rec := NewRecorder()
	randomStream(rand.New(rand.NewSource(2)), 500, rec, rec)
	data := encodeTrace(t, rec.Finish())

	flipHash := bytes.Clone(data)
	flipHash[len(flipHash)-1] ^= 0xFF
	if _, err := ReadTrace(bytes.NewReader(flipHash)); err == nil {
		t.Fatal("mismatched trailer digest decoded without error")
	} else if !errors.Is(err, ErrBadFormat) || !strings.Contains(err.Error(), "hash mismatch") {
		t.Fatalf("want a tagged hash-mismatch error, got %v", err)
	}

	badMagic := bytes.Clone(data)
	badMagic[len(badMagic)-hashTrailerLen] = 'X'
	if _, err := ReadTrace(bytes.NewReader(badMagic)); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("scrambled trailer magic: got %v, want ErrBadFormat", err)
	}

	for cut := 1; cut < hashTrailerLen; cut++ {
		if _, err := ReadTrace(bytes.NewReader(data[:len(data)-cut])); !errors.Is(err, ErrBadFormat) {
			t.Fatalf("trailer truncated by %d bytes: got %v, want ErrBadFormat", cut, err)
		}
	}

	// Same rejection on the filtered format.
	f := NewL2Filter(l1Config())
	randomStream(rand.New(rand.NewSource(2)), 500, f, f)
	ldata := encodeL2Trace(t, f.Trace())
	lmut := bytes.Clone(ldata)
	lmut[len(lmut)-5] ^= 0x80
	if _, err := ReadL2Trace(bytes.NewReader(lmut)); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("l2 trailer corruption: got %v, want ErrBadFormat", err)
	}
}

// TestParseHash: the hex form round-trips and junk is rejected.
func TestParseHash(t *testing.T) {
	h := Hash(sha256.Sum256([]byte("x")))
	got, err := ParseHash(h.String())
	if err != nil || got != h {
		t.Fatalf("round trip: %v %v", got, err)
	}
	if h.IsZero() || (Hash{}).IsZero() != true {
		t.Fatal("IsZero misclassifies")
	}
	for _, bad := range []string{"", "abc", strings.Repeat("z", 64), h.String() + "00"} {
		if _, err := ParseHash(bad); err == nil {
			t.Fatalf("ParseHash(%q) succeeded", bad)
		}
	}
}
