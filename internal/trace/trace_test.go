package trace

import (
	"math/rand"
	"testing"

	"repro/internal/cache"
	"repro/internal/simmem"
)

func l1Config() cache.Config {
	return cache.Config{Name: "L1D", SizeBytes: 32 << 10, LineBytes: 32, Ways: 2}
}

func l2Config(size int) cache.Config {
	return cache.Config{Name: "L2", SizeBytes: size, LineBytes: 128, Ways: 2}
}

// phaseLog collects replayed phase markers.
type phaseLog struct{ events []string }

func (p *phaseLog) PhaseBegin(n string) { p.events = append(p.events, "B:"+n) }
func (p *phaseLog) PhaseEnd(n string)   { p.events = append(p.events, "E:"+n) }

// randomStream drives t (and ph, if non-nil) with a reproducible
// pseudo-random access pattern exercising every tracer entry point:
// single accesses, flat and strided runs of every kind, ops and nested
// phase markers.
func randomStream(rng *rand.Rand, n int, t simmem.Tracer, ph PhaseSink) {
	addr := func() uint64 { return uint64(rng.Intn(1 << 22)) }
	units := []uint32{1, 1, 1, 4, 8}
	kinds := []simmem.Kind{simmem.Load, simmem.Load, simmem.Store, simmem.Prefetch}
	inPhase := false
	for i := 0; i < n; i++ {
		switch rng.Intn(10) {
		case 0:
			t.Access(addr(), uint32(rng.Intn(64)), kinds[rng.Intn(len(kinds))])
		case 1:
			t.Ops(uint64(rng.Intn(1000)))
		case 2:
			if ph != nil {
				if inPhase {
					ph.PhaseEnd("Vop")
				} else {
					ph.PhaseBegin("Vop")
				}
				inPhase = !inPhase
			}
		case 3, 4, 5:
			t.Run(addr(), rng.Intn(300), units[rng.Intn(len(units))], kinds[rng.Intn(len(kinds))])
		default:
			simmem.AccessStridedUnit(t, addr(), 1+rng.Intn(40), 64+rng.Intn(700),
				1+rng.Intn(20), units[rng.Intn(len(units))], kinds[rng.Intn(len(kinds))])
		}
	}
	if inPhase && ph != nil {
		ph.PhaseEnd("Vop")
	}
}

// tee duplicates a stream to two tracer/phase-sink pairs so the live
// and recorded consumers observe identical input.
type tee struct {
	a, b interface {
		simmem.Tracer
		PhaseSink
	}
}

func (t tee) Access(a uint64, s uint32, k simmem.Kind) { t.a.Access(a, s, k); t.b.Access(a, s, k) }
func (t tee) Run(a uint64, n int, u uint32, k simmem.Kind) {
	t.a.Run(a, n, u, k)
	t.b.Run(a, n, u, k)
}
func (t tee) RunStrided(a uint64, rb, st, ro int, u uint32, k simmem.Kind) {
	simmem.AccessStridedUnit(t.a, a, rb, st, ro, u, k)
	simmem.AccessStridedUnit(t.b, a, rb, st, ro, u, k)
}
func (t tee) Ops(n uint64)        { t.a.Ops(n); t.b.Ops(n) }
func (t tee) PhaseBegin(n string) { t.a.PhaseBegin(n); t.b.PhaseBegin(n) }
func (t tee) PhaseEnd(n string)   { t.a.PhaseEnd(n); t.b.PhaseEnd(n) }

// liveHierarchy wraps a Hierarchy with live phase-delta tracking, the
// same accumulation the harness performs.
type liveHierarchy struct {
	*cache.Hierarchy
	starts map[string]cache.Stats
	acc    map[string]cache.Stats
}

func newLiveHierarchy(l1, l2 cache.Config) *liveHierarchy {
	return &liveHierarchy{
		Hierarchy: cache.NewHierarchy(l1, l2),
		starts:    map[string]cache.Stats{},
		acc:       map[string]cache.Stats{},
	}
}

func (l *liveHierarchy) PhaseBegin(n string) { l.starts[n] = l.Snapshot() }
func (l *liveHierarchy) PhaseEnd(n string) {
	s, ok := l.starts[n]
	if !ok {
		return
	}
	delete(l.starts, n)
	l.acc[n] = l.acc[n].Add(l.Snapshot().Sub(s))
}

// TestReplayMatchesLiveRandom is the core property test: for randomized
// workloads, replaying a recorded trace through a hierarchy produces
// byte-identical Stats (whole-run and per-phase) to live tracing, the
// LRU invariant holds after replay, and the same holds across several
// cache geometries replayed from one capture.
func TestReplayMatchesLiveRandom(t *testing.T) {
	geoms := []struct{ l1, l2 cache.Config }{
		{l1Config(), l2Config(1 << 20)},
		{cache.Config{Name: "L1", SizeBytes: 16 << 10, LineBytes: 32, Ways: 2}, l2Config(256 << 10)},
		{cache.Config{Name: "L1", SizeBytes: 32 << 10, LineBytes: 64, Ways: 4}, l2Config(512 << 10)},
	}
	for seed := int64(1); seed <= 8; seed++ {
		live := newLiveHierarchy(geoms[0].l1, geoms[0].l2)
		rec := NewRecorder()
		randomStream(rand.New(rand.NewSource(seed)), 4000, tee{live, rec}, tee{live, rec})
		tr := rec.Finish()

		for _, g := range geoms {
			replayed := newLiveHierarchy(g.l1, g.l2)
			tr.Replay(replayed.Hierarchy, replayed)
			if err := replayed.L1.CheckLRUInvariant(); err != nil {
				t.Fatalf("seed %d: L1 invariant after replay: %v", seed, err)
			}
			if err := replayed.L2.CheckLRUInvariant(); err != nil {
				t.Fatalf("seed %d: L2 invariant after replay: %v", seed, err)
			}
			if g.l1 != geoms[0].l1 || g.l2 != geoms[0].l2 {
				continue // different geometry: only invariants comparable
			}
			if replayed.Snapshot() != live.Snapshot() {
				t.Fatalf("seed %d: replayed stats differ\nlive   %+v\nreplay %+v",
					seed, live.Snapshot(), replayed.Snapshot())
			}
			if len(replayed.acc) != len(live.acc) {
				t.Fatalf("seed %d: phase sets differ: %v vs %v", seed, replayed.acc, live.acc)
			}
			for name, want := range live.acc {
				if got := replayed.acc[name]; got != want {
					t.Fatalf("seed %d phase %s: %+v != %+v", seed, name, got, want)
				}
			}
		}
	}
}

// TestL2FilterMatchesLiveRandom checks the L1-filtered path: filtering
// a random stream through the shared L1 and replaying the L2-bound
// events against several L2 geometries reproduces the exact Stats and
// phase deltas of a live hierarchy with that L1/L2 pair.
func TestL2FilterMatchesLiveRandom(t *testing.T) {
	l2s := []cache.Config{
		l2Config(256 << 10),
		l2Config(1 << 20),
		{Name: "L2", SizeBytes: 512 << 10, LineBytes: 128, Ways: 4},
	}
	for seed := int64(1); seed <= 8; seed++ {
		lives := make([]*liveHierarchy, len(l2s))
		filter := NewL2Filter(l1Config())
		sinks := make([]interface {
			simmem.Tracer
			PhaseSink
		}, 0, len(l2s)+1)
		for i, l2 := range l2s {
			lives[i] = newLiveHierarchy(l1Config(), l2)
			sinks = append(sinks, lives[i])
		}
		sinks = append(sinks, filter)
		// Chain tees so every consumer sees the same stream.
		var dst interface {
			simmem.Tracer
			PhaseSink
		} = sinks[0]
		for _, s := range sinks[1:] {
			dst = tee{dst, s}
		}
		randomStream(rand.New(rand.NewSource(seed)), 4000, dst, dst)

		lt := filter.Trace()
		for i, l2 := range l2s {
			whole, phases := lt.Replay(l2)
			if whole != lives[i].Snapshot() {
				t.Fatalf("seed %d l2=%d: filtered stats differ\nlive   %+v\nfilter %+v",
					seed, l2.SizeBytes, lives[i].Snapshot(), whole)
			}
			for name, want := range lives[i].acc {
				if got := phases[name]; got != want {
					t.Fatalf("seed %d l2=%d phase %s: %+v != %+v", seed, l2.SizeBytes, name, got, want)
				}
			}
		}
	}
}

// TestCountAgreesWithHierarchy is the prefetch-consistency cross-check:
// Count and a Hierarchy observing the same stream must agree on every
// graduated-operation counter, including per-line prefetch counting.
func TestCountAgreesWithHierarchy(t *testing.T) {
	h := cache.NewHierarchy(l1Config(), l2Config(1<<20))
	c := &simmem.Count{LineBytes: l1Config().LineBytes}
	randomStream(rand.New(rand.NewSource(7)), 6000, tee{nopPhases{h}, nopPhases{c}}, nil)
	s := h.Snapshot()
	if c.Loads != s.Loads || c.Stores != s.Stores || c.Prefetches != s.Prefetches ||
		c.LoadBytes != s.LoadBytes || c.StoreBytes != s.StoreBytes || c.OpCount != s.Ops {
		t.Fatalf("Count disagrees with Hierarchy on the same stream:\ncount %+v\nstats %+v", c, s)
	}
}

// nopPhases adapts a plain Tracer to the tee's combined interface.
type nopPhases struct{ simmem.Tracer }

func (nopPhases) PhaseBegin(string) {}
func (nopPhases) PhaseEnd(string)   {}

func TestRecorderChunking(t *testing.T) {
	rec := NewRecorder()
	n := chunkRecords*2 + 100
	for i := 0; i < n; i++ {
		rec.Run(uint64(i)*32, 16, 1, simmem.Load)
	}
	tr := rec.Finish()
	if tr.Records() != n {
		t.Fatalf("records = %d, want %d", tr.Records(), n)
	}
	if got := len(tr.chunks); got != 3 {
		t.Fatalf("chunks = %d, want 3", got)
	}
	if tr.SizeBytes() < n*recordBytes {
		t.Fatalf("SizeBytes %d implausibly small", tr.SizeBytes())
	}
	var c simmem.Count
	tr.Replay(&c, nil)
	if c.Loads != uint64(n)*16 {
		t.Fatalf("replayed %d loads, want %d", c.Loads, n*16)
	}
}

func TestRecorderOpsDeferral(t *testing.T) {
	rec := NewRecorder()
	rec.Ops(10)
	rec.Ops(20)
	rec.PhaseBegin("P")
	rec.Ops(5)
	rec.PhaseEnd("P")
	rec.Ops(7)
	tr := rec.Finish()
	// 30 flushed before PhaseBegin, 5 before PhaseEnd, 7 at Finish:
	// 3 ops records + 2 markers.
	if tr.Records() != 5 {
		t.Fatalf("records = %d, want 5", tr.Records())
	}
	var c simmem.Count
	var ph phaseLog
	tr.Replay(&c, &ph)
	if c.OpCount != 42 {
		t.Fatalf("ops = %d, want 42", c.OpCount)
	}
	want := []string{"B:P", "E:P"}
	if len(ph.events) != 2 || ph.events[0] != want[0] || ph.events[1] != want[1] {
		t.Fatalf("phase events %v, want %v", ph.events, want)
	}
}

func TestRecorderTallBlockSplit(t *testing.T) {
	rec := NewRecorder()
	rows := int(^uint16(0)) + 10
	rec.RunStrided(0, 8, 64, rows, 1, simmem.Store)
	tr := rec.Finish()
	if tr.Records() != 2 {
		t.Fatalf("records = %d, want 2 (tall block split)", tr.Records())
	}
	var c simmem.Count
	tr.Replay(&c, nil)
	if c.Stores != uint64(rows)*8 {
		t.Fatalf("stores = %d, want %d", c.Stores, rows*8)
	}
}

func TestL2TraceSizeReport(t *testing.T) {
	f := NewL2Filter(l1Config())
	for i := 0; i < 10000; i++ {
		f.Run(uint64(i)*64, 32, 1, simmem.Load)
	}
	lt := f.Trace()
	if lt.Events() == 0 || lt.SizeBytes() == 0 {
		t.Fatal("empty filtered trace for a missing stream")
	}
	if lt.Events() > 10000+1 {
		t.Fatalf("filter emitted more events (%d) than references", lt.Events())
	}
	if s := lt.String(); s == "" {
		t.Fatal("empty String()")
	}
}
