// L1-filtered traces: the paper's three machines (and most cache
// sweeps) differ only in their second-level cache, while the shared L1
// determines which references reach L2 at all. FilterL2 runs the L1
// simulation once and captures just the L2-bound stream — typically two
// to three orders of magnitude shorter than the full reference stream —
// so sweeping L2 geometries costs microseconds per configuration
// instead of a full cache simulation. This is the classic
// cache-filtering (trace-stripping) optimisation of trace-driven
// simulation, exact for any L2 because the L1→L2 stream is a pure
// function of the L1 geometry.
package trace

import (
	"fmt"
	"time"

	"repro/internal/cache"
	"repro/internal/obs"
	"repro/internal/simmem"
)

// L2Filter is a Tracer that simulates one L1 data cache and captures
// the stream it sends to the next level. It implements simmem.Tracer,
// simmem.StridedTracer and the codec's PhaseRecorder, mirroring
// cache.Hierarchy's L1-side behaviour event for event.
type L2Filter struct {
	l1        *cache.Cache
	lineBytes uint64

	base     cache.Stats // L1-determined counters; L2 fields stay zero
	events   []uint64    // addr<<1 | 1 for writeback installs, | 0 for demand fills
	marks    []l2Mark
	names    []string
	phaseIdx map[string]uint32
}

// l2Mark is a phase marker inside the L2 event stream, with the
// L1-level counters at the marker (the L2-level part is recomputed per
// replayed geometry).
type l2Mark struct {
	pos   int
	name  uint32
	begin bool
	base  cache.Stats
}

var (
	_ simmem.Tracer        = (*L2Filter)(nil)
	_ simmem.StridedTracer = (*L2Filter)(nil)
	_ PhaseSink            = (*L2Filter)(nil)
)

// NewL2Filter returns a filter simulating the given L1 geometry.
func NewL2Filter(l1 cache.Config) *L2Filter {
	c := cache.New(l1)
	return &L2Filter{l1: c, lineBytes: uint64(l1.LineBytes), phaseIdx: map[string]uint32{}}
}

// lineRef mirrors cache.Hierarchy.lineRef up to the L1/L2 boundary,
// emitting the L2-bound events instead of probing an L2.
func (f *L2Filter) lineRef(addr uint64, write bool) {
	r1 := f.l1.Access(addr, write)
	if r1.Hit {
		return
	}
	f.base.L1Misses++
	if r1.EvictedDirty {
		f.base.L1Writebacks++
		f.events = append(f.events, (r1.EvictedLine*f.lineBytes)<<1|1)
	}
	f.events = append(f.events, addr<<1)
}

// Access implements simmem.Tracer (cf. cache.Hierarchy.Access).
func (f *L2Filter) Access(addr uint64, size uint32, kind simmem.Kind) {
	switch kind {
	case simmem.Load:
		f.base.Loads++
		f.base.LoadBytes += uint64(size)
	case simmem.Store:
		f.base.Stores++
		f.base.StoreBytes += uint64(size)
	case simmem.Prefetch:
		f.base.Prefetches++
		if f.l1.Lookup(addr) {
			f.base.PrefetchL1Hits++
			return
		}
		f.lineRef(addr, false)
		return
	}
	if size == 0 {
		return
	}
	first := addr &^ (f.lineBytes - 1)
	last := (addr + uint64(size) - 1) &^ (f.lineBytes - 1)
	write := kind == simmem.Store
	for a := first; a <= last; a += f.lineBytes {
		f.lineRef(a, write)
	}
}

// Run implements simmem.Tracer (cf. cache.Hierarchy.Run).
func (f *L2Filter) Run(addr uint64, n int, unit uint32, kind simmem.Kind) {
	f.RunStrided(addr, n, 0, 1, unit, kind)
}

// RunStrided implements simmem.StridedTracer (cf.
// cache.Hierarchy.RunStrided).
func (f *L2Filter) RunStrided(addr uint64, rowBytes, stride, rows int, unit uint32, kind simmem.Kind) {
	if rowBytes <= 0 || rows <= 0 {
		return
	}
	if kind == simmem.Prefetch {
		for r := 0; r < rows; r++ {
			for a := addr &^ (f.lineBytes - 1); a < addr+uint64(rowBytes); a += f.lineBytes {
				f.Access(a, 0, simmem.Prefetch)
			}
			addr += uint64(stride)
		}
		return
	}
	refs := uint64(rows) * simmem.RunRefs(rowBytes, unit)
	bytes := uint64(rows) * uint64(rowBytes)
	write := kind == simmem.Store
	if write {
		f.base.Stores += refs
		f.base.StoreBytes += bytes
	} else {
		f.base.Loads += refs
		f.base.LoadBytes += bytes
	}
	for r := 0; r < rows; r++ {
		first := addr &^ (f.lineBytes - 1)
		last := (addr + uint64(rowBytes) - 1) &^ (f.lineBytes - 1)
		for a := first; a <= last; a += f.lineBytes {
			f.lineRef(a, write)
		}
		addr += uint64(stride)
	}
}

// Ops implements simmem.Tracer.
func (f *L2Filter) Ops(n uint64) { f.base.Ops += n }

func (f *L2Filter) phase(name string) uint32 {
	if i, ok := f.phaseIdx[name]; ok {
		return i
	}
	i := uint32(len(f.names))
	f.names = append(f.names, name)
	f.phaseIdx[name] = i
	return i
}

// PhaseBegin implements the codec's PhaseRecorder.
func (f *L2Filter) PhaseBegin(name string) {
	f.marks = append(f.marks, l2Mark{pos: len(f.events), name: f.phase(name), begin: true, base: f.base})
}

// PhaseEnd implements the codec's PhaseRecorder.
func (f *L2Filter) PhaseEnd(name string) {
	f.marks = append(f.marks, l2Mark{pos: len(f.events), name: f.phase(name), base: f.base})
}

// Trace returns the captured L2-bound stream. The filter may not be
// used afterwards.
func (f *L2Filter) Trace() *L2Trace {
	return &L2Trace{
		L1:     f.l1.Config(),
		base:   f.base,
		events: f.events,
		marks:  f.marks,
		names:  f.names,
		hcache: &hashCache{},
	}
}

// L2Trace is the L2-bound reference stream of one workload run behind a
// fixed L1, replayable against any L2 geometry.
type L2Trace struct {
	L1     cache.Config
	base   cache.Stats
	events []uint64
	marks  []l2Mark
	names  []string
	hcache *hashCache // memoized content hash; nil disables caching
}

// Events returns the number of captured L2 references.
func (t *L2Trace) Events() int { return len(t.events) }

// SizeBytes returns the approximate in-memory footprint.
func (t *L2Trace) SizeBytes() int {
	return cap(t.events)*8 + cap(t.marks)*int(l2MarkBytes)
}

const l2MarkBytes = 8 + 4 + 4 + 96 // pos, name+begin, pad, Stats

// String summarises the trace for reports.
func (t *L2Trace) String() string {
	return fmt.Sprintf("l2trace{%d events, %.1f MB}", len(t.events), float64(t.SizeBytes())/(1<<20))
}

// Replay simulates the captured stream against one L2 geometry and
// returns the whole-run Stats plus the per-phase Stats deltas —
// counter-identical to running the full workload live against a
// cache.Hierarchy{L1: t.L1, L2: l2}.
func (t *L2Trace) Replay(l2 cache.Config) (cache.Stats, map[string]cache.Stats) {
	if obs.Enabled() {
		defer noteL2Replay(time.Now(), len(t.events))
	}
	var rp l2Replay
	rp.reset(t, l2)
	rp.run(0, len(t.events))
	return rp.finish()
}

// l2Replay is the mutable state of one L2 replay: the simulated cache,
// the running L2 counters, the mark cursor, and the phase maps that
// used to be per-call allocations (statsAt's closure and the starts
// map). The fused pass (ReplayMany) keeps one per config and advances
// each across every chunk of the event stream; reset lets a scratch be
// reused across replays without reallocating the maps.
type l2Replay struct {
	t                                  *L2Trace
	c                                  *cache.Cache
	l2Accesses, l2Misses, l2Writebacks uint64
	mi                                 int
	starts                             map[string]cache.Stats
	phases                             map[string]cache.Stats
}

// reset points the scratch at a trace/geometry pair and clears all
// running state.
func (rp *l2Replay) reset(t *L2Trace, l2 cache.Config) {
	rp.t = t
	rp.c = cache.New(l2)
	rp.l2Accesses, rp.l2Misses, rp.l2Writebacks = 0, 0, 0
	rp.mi = 0
	if rp.starts == nil {
		rp.starts = map[string]cache.Stats{}
	} else {
		clear(rp.starts)
	}
	rp.phases = nil
}

// statsAt reconstructs the full hierarchy counters at mark m.
func (rp *l2Replay) statsAt(m *l2Mark) cache.Stats {
	s := m.base
	s.L2Accesses = rp.l2Accesses
	s.L2Misses = rp.l2Misses
	s.L2Writebacks = rp.l2Writebacks
	return s
}

// run replays events [lo, hi), applying marks at positions in the same
// window. Calling run over consecutive windows is exactly the serial
// single-window replay — the fused pass interleaves windows of several
// configs while the window is hot in the host cache.
func (rp *l2Replay) run(lo, hi int) {
	t, c := rp.t, rp.c
	for pos := lo; pos < hi; pos++ {
		for rp.mi < len(t.marks) && t.marks[rp.mi].pos == pos {
			rp.applyMark(&t.marks[rp.mi])
			rp.mi++
		}
		ev := t.events[pos]
		addr := ev >> 1
		if ev&1 != 0 {
			// L1 writeback install: an L2 access that is not a demand
			// miss; only a displaced dirty L2 victim adds traffic.
			rp.l2Accesses++
			r := c.Access(addr, true)
			if !r.Hit && r.EvictedDirty {
				rp.l2Writebacks++
			}
			continue
		}
		rp.l2Accesses++
		r := c.Access(addr, false)
		if !r.Hit {
			rp.l2Misses++
			if r.EvictedDirty {
				rp.l2Writebacks++
			}
		}
	}
}

// finish applies the trailing marks and returns the whole-run and
// per-phase Stats.
func (rp *l2Replay) finish() (cache.Stats, map[string]cache.Stats) {
	t := rp.t
	for rp.mi < len(t.marks) {
		rp.applyMark(&t.marks[rp.mi])
		rp.mi++
	}
	whole := t.base
	whole.L2Accesses = rp.l2Accesses
	whole.L2Misses = rp.l2Misses
	whole.L2Writebacks = rp.l2Writebacks
	return whole, rp.phases
}

// applyMark accumulates one phase begin/end into the phase map, with
// the same begin-snapshot / end-delta semantics as the harness's live
// phase tracker.
func (rp *l2Replay) applyMark(m *l2Mark) {
	applyMarkStats(rp.t.names[m.name], m.begin, rp.statsAt(m), rp.starts, &rp.phases)
}

// applyMarkStats folds one phase marker with its at-mark counters into
// the begin-snapshot / end-delta phase accounting. Shared by the
// serial, fused and parallel replay paths so their per-phase semantics
// cannot drift apart.
func applyMarkStats(name string, begin bool, at cache.Stats, starts map[string]cache.Stats, phases *map[string]cache.Stats) {
	if begin {
		starts[name] = at
		return
	}
	s, ok := starts[name]
	if !ok {
		return
	}
	delete(starts, name)
	if *phases == nil {
		*phases = map[string]cache.Stats{}
	}
	(*phases)[name] = (*phases)[name].Add(at.Sub(s))
}
