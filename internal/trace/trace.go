// Package trace implements capture and replay of the simulated
// memory-reference stream: the classic trace-driven-simulation split
// between generating a workload's references (expensive — it runs the
// instrumented codec) and simulating a memory hierarchy against them
// (cheap, and repeatable against any number of hierarchies).
//
// A Recorder implements simmem.Tracer (plus the strided extension and
// the codec's phase-recorder shape) and appends fixed-width records into
// chunked buffers. Replaying the resulting Trace through a
// cache.Hierarchy reproduces counter-identical Stats to attaching the
// hierarchy to the live codec run — the paper's whole methodology
// re-keyed so the MPEG-4 encode happens once per workload and every
// machine or cache geometry is a replay.
//
// Two exactness-preserving compressions keep traces compact:
//
//   - Block kernels report 2-D strided blocks as one event (see
//     simmem.StridedTracer); one record stores what would otherwise be
//     one record per row.
//   - Ops (non-memory instruction) counts are order-independent between
//     phase markers — no Tracer's state depends on where within a phase
//     they land — so the Recorder accumulates them and emits a single
//     record before each phase boundary and at the end of the trace.
//
// Everything else is stored verbatim, in order: replay issues exactly
// the memory events of the live run, in the live order.
package trace

import (
	"fmt"
	"math/bits"
	"time"

	"repro/internal/obs"
	"repro/internal/simmem"
)

// Replay-throughput metrics. The replay loops are the hottest code in
// the repository, so instrumentation is strictly per *call*: two
// time.Now reads and a handful of atomics per replay of millions of
// records, and nothing at all when obs is disabled (BenchmarkObsOverhead
// proves both halves). The *_per_sec gauges hold the last completed
// replay's throughput — the live number a dashboard wants mid-sweep;
// the counter/histogram pairs give the cumulative rate
// (records_total / seconds sum).
var (
	mReplays         = obs.Default().Counter("trace_replay_total")
	mReplayRecords   = obs.Default().Counter("trace_replay_records_total")
	mReplaySeconds   = obs.Default().Histogram("trace_replay_seconds", nil)
	mReplayRate      = obs.Default().Gauge("trace_replay_records_per_sec")
	mL2Replays       = obs.Default().Counter("trace_replay_l2_total")
	mL2ReplayEvents  = obs.Default().Counter("trace_replay_l2_events_total")
	mL2ReplaySeconds = obs.Default().Histogram("trace_replay_l2_seconds", nil)
	mL2ReplayRate    = obs.Default().Gauge("trace_replay_l2_events_per_sec")
)

// noteReplay records one finished full-trace replay of n records.
func noteReplay(start time.Time, n int) {
	elapsed := time.Since(start).Seconds()
	mReplaySeconds.Observe(elapsed)
	mReplays.Inc()
	mReplayRecords.Add(uint64(n))
	if elapsed > 0 {
		mReplayRate.Set(int64(float64(n) / elapsed))
	}
}

// noteL2Replay records one finished L2-trace replay of n events.
func noteL2Replay(start time.Time, n int) {
	elapsed := time.Since(start).Seconds()
	mL2ReplaySeconds.Observe(elapsed)
	mL2Replays.Inc()
	mL2ReplayEvents.Add(uint64(n))
	if elapsed > 0 {
		mL2ReplayRate.Set(int64(float64(n) / elapsed))
	}
}

// Record opcodes. Loads/stores/prefetches appear both as single
// accesses (opAccess*) and as strided runs (opRun*, rows == 1 for flat
// runs).
const (
	opAccessLoad = iota
	opAccessStore
	opAccessPrefetch
	opRunLoad
	opRunStore
	opRunPrefetch
	opOps        // payload holds the accumulated count
	opPhaseBegin // payload holds the phase-name index
	opPhaseEnd
	opWide // payload indexes the wide-record side table
)

// record is one fixed-width trace record, packed into 16 bytes:
//
//	lo  bits 0-55  base address / ops count / phase index / wide index
//	    bits 56-59 opcode
//	    bits 60-63 log2 of the run access unit
//	hi  access ops: bits 0-31 access size
//	    run ops:    bits 0-23 row bytes, 24-39 rows, 40-63 stride
//
// Values outside these ranges are legal through the Tracer interface
// and the wire format (the codec never produces them); they spill
// verbatim into the trace's wide-record table via opWide, so the
// stored stream stays exact for any input.
type record struct {
	lo, hi uint64
}

const (
	recPayloadBits = 56
	recPayloadMask = 1<<recPayloadBits - 1
	recRunMaxN     = 1<<24 - 1
	recRunMaxStr   = 1<<24 - 1
	recMaxUnit     = 1 << 15
)

func (r record) op() uint8         { return uint8(r.lo>>recPayloadBits) & 0xF }
func (r record) payload() uint64   { return r.lo & recPayloadMask }
func (r record) unit() uint32      { return uint32(1) << (r.lo >> 60) }
func (r record) accessN() uint32   { return uint32(r.hi) }
func (r record) runN() uint32      { return uint32(r.hi) & recRunMaxN }
func (r record) runRows() uint16   { return uint16(r.hi >> 24) }
func (r record) runStride() uint32 { return uint32(r.hi >> 40) }

// wideRecord stores one record whose fields exceed the packed layout,
// verbatim.
type wideRecord struct {
	addr   uint64
	n      uint32
	stride uint32
	unit   uint32
	rows   uint16
	op     uint8
}

// recordBytes is the in-memory footprint of one packed record; the
// rare wide spill costs wideRecordBytes more.
const (
	recordBytes     = 16
	wideRecordBytes = 24
)

// unitLog returns log2(unit) for the power-of-two units the packed
// form stores; -1 sends the record to the wide table.
func unitLog(unit uint32) int {
	if unit == 0 || unit&(unit-1) != 0 || unit > recMaxUnit {
		return -1
	}
	return bits.TrailingZeros32(unit)
}

// chunkRecords is the record capacity of one buffer chunk (512 KB).
// Chunked growth keeps append cost flat and avoids the transient 2×
// footprint of reallocating one giant slice.
const chunkRecords = 1 << 15

// Trace is a captured reference stream.
type Trace struct {
	chunks     [][]record
	wide       []wideRecord
	phaseNames []string
	records    int
	hcache     *hashCache // memoized content hash; nil disables caching
}

// Records returns the number of stored records.
func (t *Trace) Records() int { return t.records }

// SizeBytes returns the approximate in-memory footprint of the trace.
func (t *Trace) SizeBytes() int {
	size := cap(t.wide) * wideRecordBytes
	for _, c := range t.chunks {
		size += cap(c) * recordBytes
	}
	for _, n := range t.phaseNames {
		size += len(n)
	}
	return size
}

// expand unpacks a record to its full field set, following the wide
// table for spilled records. The slow counterpart of the inline decode
// in Replay, shared by the wire encoder and the parallel batch decoder.
func (t *Trace) expand(r record) (op uint8, addr uint64, n, stride, unit uint32, rows uint16) {
	op = r.op()
	switch op {
	case opWide:
		w := &t.wide[r.payload()]
		return w.op, w.addr, w.n, w.stride, w.unit, w.rows
	case opAccessLoad, opAccessStore, opAccessPrefetch:
		return op, r.payload(), r.accessN(), 0, 0, 0
	case opRunLoad, opRunStore, opRunPrefetch:
		return op, r.payload(), r.runN(), r.runStride(), r.unit(), r.runRows()
	default:
		return op, r.payload(), 0, 0, 0, 0
	}
}

// String summarises the trace for reports.
func (t *Trace) String() string {
	return fmt.Sprintf("trace{%d records, %.1f MB}", t.records, float64(t.SizeBytes())/(1<<20))
}

// PhaseSink receives the replayed phase markers. codec.PhaseRecorder
// and the harness's phase trackers satisfy it.
type PhaseSink interface {
	PhaseBegin(name string)
	PhaseEnd(name string)
}

// Replay feeds the captured stream through tr, with phase markers
// delivered to ph (nil ph discards them). The tracer observes exactly
// the events of the recorded run in recorded order, so a
// cache.Hierarchy ends in a state and Stats identical to live tracing —
// for any geometry, not just the one the trace was recorded against.
func (t *Trace) Replay(tr simmem.Tracer, ph PhaseSink) {
	if obs.Enabled() {
		defer noteReplay(time.Now(), t.records)
	}
	st, strided := tr.(simmem.StridedTracer)
	for _, ch := range t.chunks {
		for i := range ch {
			r := ch[i]
			op, addr, n, stride, unit, rows := r.op(), r.payload(), uint32(0), uint32(0), uint32(0), uint16(0)
			if op == opWide {
				w := &t.wide[addr]
				op, addr, n, stride, unit, rows = w.op, w.addr, w.n, w.stride, w.unit, w.rows
			} else if op >= opRunLoad && op <= opRunPrefetch {
				n, stride, unit, rows = r.runN(), r.runStride(), r.unit(), r.runRows()
			} else {
				n = r.accessN()
			}
			switch op {
			case opRunLoad, opRunStore, opRunPrefetch:
				kind := simmem.Kind(op - opRunLoad)
				if rows == 1 {
					tr.Run(addr, int(n), unit, kind)
				} else if strided {
					st.RunStrided(addr, int(n), int(stride), int(rows), unit, kind)
				} else {
					for row := uint16(0); row < rows; row++ {
						tr.Run(addr, int(n), unit, kind)
						addr += uint64(stride)
					}
				}
			case opAccessLoad, opAccessStore, opAccessPrefetch:
				tr.Access(addr, n, simmem.Kind(op-opAccessLoad))
			case opOps:
				tr.Ops(addr)
			case opPhaseBegin:
				if ph != nil {
					ph.PhaseBegin(t.phaseNames[addr])
				}
			case opPhaseEnd:
				if ph != nil {
					ph.PhaseEnd(t.phaseNames[addr])
				}
			}
		}
	}
}

// Recorder captures a reference stream. It implements simmem.Tracer,
// simmem.StridedTracer and the codec's PhaseRecorder, so one Recorder
// stands in for both the tracer and the phase recorder of a codec run.
type Recorder struct {
	t        *Trace
	cur      []record
	pendOps  uint64
	phaseIdx map[string]uint32
}

var (
	_ simmem.Tracer        = (*Recorder)(nil)
	_ simmem.StridedTracer = (*Recorder)(nil)
	_ PhaseSink            = (*Recorder)(nil)
)

// NewRecorder returns an empty Recorder.
func NewRecorder() *Recorder {
	return &Recorder{t: &Trace{hcache: &hashCache{}}, phaseIdx: map[string]uint32{}}
}

func (r *Recorder) append(rec record) {
	if len(r.cur) == cap(r.cur) {
		r.cur = make([]record, 0, chunkRecords)
		r.t.chunks = append(r.t.chunks, r.cur)
	}
	r.cur = append(r.cur, rec)
	r.t.chunks[len(r.t.chunks)-1] = r.cur
	r.t.records++
}

// appendRecord packs one record, spilling to the wide table when a
// field exceeds the packed layout. The wire decoder routes through the
// same method, so in-memory and decoded traces normalize identically.
func (r *Recorder) appendRecord(op uint8, addr uint64, n, stride, unit uint32, rows uint16) {
	switch op {
	case opAccessLoad, opAccessStore, opAccessPrefetch:
		if addr <= recPayloadMask {
			r.append(record{lo: addr | uint64(op)<<recPayloadBits, hi: uint64(n)})
			return
		}
	case opRunLoad, opRunStore, opRunPrefetch:
		if ul := unitLog(unit); ul >= 0 && addr <= recPayloadMask && n <= recRunMaxN && stride <= recRunMaxStr {
			r.append(record{
				lo: addr | uint64(op)<<recPayloadBits | uint64(ul)<<60,
				hi: uint64(n) | uint64(rows)<<24 | uint64(stride)<<40,
			})
			return
		}
	default: // opOps, opPhaseBegin, opPhaseEnd
		if addr <= recPayloadMask {
			r.append(record{lo: addr | uint64(op)<<recPayloadBits})
			return
		}
	}
	r.append(record{lo: uint64(len(r.t.wide)) | uint64(opWide)<<recPayloadBits})
	r.t.wide = append(r.t.wide, wideRecord{op: op, addr: addr, n: n, stride: stride, unit: unit, rows: rows})
}

// Access implements simmem.Tracer.
func (r *Recorder) Access(addr uint64, size uint32, kind simmem.Kind) {
	r.appendRecord(opAccessLoad+uint8(kind), addr, size, 0, 0, 0)
}

// Run implements simmem.Tracer.
func (r *Recorder) Run(addr uint64, n int, unit uint32, kind simmem.Kind) {
	if n <= 0 {
		return
	}
	r.appendRecord(opRunLoad+uint8(kind), addr, uint32(n), 0, unit, 1)
}

// RunStrided implements simmem.StridedTracer. Blocks taller than the
// record's row field or with strides outside uint32 (never produced by
// the codec, but legal through the interface) are split or decomposed
// so the stored stream stays exact.
func (r *Recorder) RunStrided(addr uint64, rowBytes, stride, rows int, unit uint32, kind simmem.Kind) {
	if rowBytes <= 0 || rows <= 0 {
		return
	}
	if stride < 0 || int64(stride) > int64(^uint32(0)) {
		for row := 0; row < rows; row++ {
			r.Run(addr, rowBytes, unit, kind)
			addr += uint64(stride)
		}
		return
	}
	op := opRunLoad + uint8(kind)
	for rows > 0 {
		c := rows
		if c > int(^uint16(0)) {
			c = int(^uint16(0))
		}
		r.appendRecord(op, addr, uint32(rowBytes), uint32(stride), unit, uint16(c))
		addr += uint64(stride) * uint64(c)
		rows -= c
	}
}

// Ops implements simmem.Tracer. Counts accumulate and flush at phase
// boundaries and at Finish — their position between those points
// cannot affect any tracer (they are pure counter additions), and
// coalescing them removes about a quarter of all records.
func (r *Recorder) Ops(n uint64) { r.pendOps += n }

func (r *Recorder) flushOps() {
	if r.pendOps != 0 {
		r.appendRecord(opOps, r.pendOps, 0, 0, 0, 0)
		r.pendOps = 0
	}
}

func (r *Recorder) phase(name string) uint64 {
	if i, ok := r.phaseIdx[name]; ok {
		return uint64(i)
	}
	i := uint32(len(r.t.phaseNames))
	r.t.phaseNames = append(r.t.phaseNames, name)
	r.phaseIdx[name] = i
	return uint64(i)
}

// PhaseBegin implements the codec's PhaseRecorder.
func (r *Recorder) PhaseBegin(name string) {
	r.flushOps()
	r.appendRecord(opPhaseBegin, r.phase(name), 0, 0, 0, 0)
}

// PhaseEnd implements the codec's PhaseRecorder.
func (r *Recorder) PhaseEnd(name string) {
	r.flushOps()
	r.appendRecord(opPhaseEnd, r.phase(name), 0, 0, 0, 0)
}

// Finish flushes pending state and returns the captured trace. The
// Recorder may continue to append afterwards (Finish just snapshots the
// flush point), but the usual lifecycle is record, Finish, drop the
// Recorder.
func (r *Recorder) Finish() *Trace {
	r.flushOps()
	return r.t
}
