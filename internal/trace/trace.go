// Package trace implements capture and replay of the simulated
// memory-reference stream: the classic trace-driven-simulation split
// between generating a workload's references (expensive — it runs the
// instrumented codec) and simulating a memory hierarchy against them
// (cheap, and repeatable against any number of hierarchies).
//
// A Recorder implements simmem.Tracer (plus the strided extension and
// the codec's phase-recorder shape) and appends fixed-width records into
// chunked buffers. Replaying the resulting Trace through a
// cache.Hierarchy reproduces counter-identical Stats to attaching the
// hierarchy to the live codec run — the paper's whole methodology
// re-keyed so the MPEG-4 encode happens once per workload and every
// machine or cache geometry is a replay.
//
// Two exactness-preserving compressions keep traces compact:
//
//   - Block kernels report 2-D strided blocks as one event (see
//     simmem.StridedTracer); one record stores what would otherwise be
//     one record per row.
//   - Ops (non-memory instruction) counts are order-independent between
//     phase markers — no Tracer's state depends on where within a phase
//     they land — so the Recorder accumulates them and emits a single
//     record before each phase boundary and at the end of the trace.
//
// Everything else is stored verbatim, in order: replay issues exactly
// the memory events of the live run, in the live order.
package trace

import (
	"fmt"
	"time"

	"repro/internal/obs"
	"repro/internal/simmem"
)

// Replay-throughput metrics. The replay loops are the hottest code in
// the repository, so instrumentation is strictly per *call*: two
// time.Now reads and a handful of atomics per replay of millions of
// records, and nothing at all when obs is disabled (BenchmarkObsOverhead
// proves both halves). The *_per_sec gauges hold the last completed
// replay's throughput — the live number a dashboard wants mid-sweep;
// the counter/histogram pairs give the cumulative rate
// (records_total / seconds sum).
var (
	mReplays         = obs.Default().Counter("trace_replay_total")
	mReplayRecords   = obs.Default().Counter("trace_replay_records_total")
	mReplaySeconds   = obs.Default().Histogram("trace_replay_seconds", nil)
	mReplayRate      = obs.Default().Gauge("trace_replay_records_per_sec")
	mL2Replays       = obs.Default().Counter("trace_replay_l2_total")
	mL2ReplayEvents  = obs.Default().Counter("trace_replay_l2_events_total")
	mL2ReplaySeconds = obs.Default().Histogram("trace_replay_l2_seconds", nil)
	mL2ReplayRate    = obs.Default().Gauge("trace_replay_l2_events_per_sec")
)

// noteReplay records one finished full-trace replay of n records.
func noteReplay(start time.Time, n int) {
	elapsed := time.Since(start).Seconds()
	mReplaySeconds.Observe(elapsed)
	mReplays.Inc()
	mReplayRecords.Add(uint64(n))
	if elapsed > 0 {
		mReplayRate.Set(int64(float64(n) / elapsed))
	}
}

// noteL2Replay records one finished L2-trace replay of n events.
func noteL2Replay(start time.Time, n int) {
	elapsed := time.Since(start).Seconds()
	mL2ReplaySeconds.Observe(elapsed)
	mL2Replays.Inc()
	mL2ReplayEvents.Add(uint64(n))
	if elapsed > 0 {
		mL2ReplayRate.Set(int64(float64(n) / elapsed))
	}
}

// Record opcodes. Loads/stores/prefetches appear both as single
// accesses (opAccess*) and as strided runs (opRun*, rows == 1 for flat
// runs).
const (
	opAccessLoad = iota
	opAccessStore
	opAccessPrefetch
	opRunLoad
	opRunStore
	opRunPrefetch
	opOps        // addr holds the accumulated count
	opPhaseBegin // addr holds the phase-name index
	opPhaseEnd
)

// record is one fixed-width trace record (24 bytes).
type record struct {
	addr   uint64 // base address / ops count / phase-name index
	n      uint32 // access size or run row length in bytes
	stride uint32 // strided runs: row separation in bytes
	unit   uint32 // runs: access granularity in bytes
	rows   uint16 // runs: row count (1 = flat run)
	op     uint8
}

// recordBytes is the in-memory footprint of one record, including
// struct padding.
const recordBytes = 24

// chunkRecords is the record capacity of one buffer chunk (~768 KB).
// Chunked growth keeps append cost flat and avoids the transient 2×
// footprint of reallocating one giant slice.
const chunkRecords = 1 << 15

// Trace is a captured reference stream.
type Trace struct {
	chunks     [][]record
	phaseNames []string
	records    int
	hcache     *hashCache // memoized content hash; nil disables caching
}

// Records returns the number of stored records.
func (t *Trace) Records() int { return t.records }

// SizeBytes returns the approximate in-memory footprint of the trace.
func (t *Trace) SizeBytes() int {
	size := 0
	for _, c := range t.chunks {
		size += cap(c) * recordBytes
	}
	for _, n := range t.phaseNames {
		size += len(n)
	}
	return size
}

// String summarises the trace for reports.
func (t *Trace) String() string {
	return fmt.Sprintf("trace{%d records, %.1f MB}", t.records, float64(t.SizeBytes())/(1<<20))
}

// PhaseSink receives the replayed phase markers. codec.PhaseRecorder
// and the harness's phase trackers satisfy it.
type PhaseSink interface {
	PhaseBegin(name string)
	PhaseEnd(name string)
}

// Replay feeds the captured stream through tr, with phase markers
// delivered to ph (nil ph discards them). The tracer observes exactly
// the events of the recorded run in recorded order, so a
// cache.Hierarchy ends in a state and Stats identical to live tracing —
// for any geometry, not just the one the trace was recorded against.
func (t *Trace) Replay(tr simmem.Tracer, ph PhaseSink) {
	if obs.Enabled() {
		defer noteReplay(time.Now(), t.records)
	}
	st, strided := tr.(simmem.StridedTracer)
	for _, ch := range t.chunks {
		for i := range ch {
			r := &ch[i]
			switch r.op {
			case opRunLoad, opRunStore, opRunPrefetch:
				kind := simmem.Kind(r.op - opRunLoad)
				if r.rows == 1 {
					tr.Run(r.addr, int(r.n), r.unit, kind)
				} else if strided {
					st.RunStrided(r.addr, int(r.n), int(r.stride), int(r.rows), r.unit, kind)
				} else {
					addr := r.addr
					for row := uint16(0); row < r.rows; row++ {
						tr.Run(addr, int(r.n), r.unit, kind)
						addr += uint64(r.stride)
					}
				}
			case opAccessLoad, opAccessStore, opAccessPrefetch:
				tr.Access(r.addr, r.n, simmem.Kind(r.op-opAccessLoad))
			case opOps:
				tr.Ops(r.addr)
			case opPhaseBegin:
				if ph != nil {
					ph.PhaseBegin(t.phaseNames[r.addr])
				}
			case opPhaseEnd:
				if ph != nil {
					ph.PhaseEnd(t.phaseNames[r.addr])
				}
			}
		}
	}
}

// Recorder captures a reference stream. It implements simmem.Tracer,
// simmem.StridedTracer and the codec's PhaseRecorder, so one Recorder
// stands in for both the tracer and the phase recorder of a codec run.
type Recorder struct {
	t        *Trace
	cur      []record
	pendOps  uint64
	phaseIdx map[string]uint32
}

var (
	_ simmem.Tracer        = (*Recorder)(nil)
	_ simmem.StridedTracer = (*Recorder)(nil)
	_ PhaseSink            = (*Recorder)(nil)
)

// NewRecorder returns an empty Recorder.
func NewRecorder() *Recorder {
	return &Recorder{t: &Trace{hcache: &hashCache{}}, phaseIdx: map[string]uint32{}}
}

func (r *Recorder) append(rec record) {
	if len(r.cur) == cap(r.cur) {
		r.cur = make([]record, 0, chunkRecords)
		r.t.chunks = append(r.t.chunks, r.cur)
	}
	r.cur = append(r.cur, rec)
	r.t.chunks[len(r.t.chunks)-1] = r.cur
	r.t.records++
}

// Access implements simmem.Tracer.
func (r *Recorder) Access(addr uint64, size uint32, kind simmem.Kind) {
	r.append(record{op: opAccessLoad + uint8(kind), addr: addr, n: size})
}

// Run implements simmem.Tracer.
func (r *Recorder) Run(addr uint64, n int, unit uint32, kind simmem.Kind) {
	if n <= 0 {
		return
	}
	r.append(record{op: opRunLoad + uint8(kind), addr: addr, n: uint32(n), unit: unit, rows: 1})
}

// RunStrided implements simmem.StridedTracer. Blocks taller than the
// record's row field or with strides outside uint32 (never produced by
// the codec, but legal through the interface) are split or decomposed
// so the stored stream stays exact.
func (r *Recorder) RunStrided(addr uint64, rowBytes, stride, rows int, unit uint32, kind simmem.Kind) {
	if rowBytes <= 0 || rows <= 0 {
		return
	}
	if stride < 0 || int64(stride) > int64(^uint32(0)) {
		for row := 0; row < rows; row++ {
			r.Run(addr, rowBytes, unit, kind)
			addr += uint64(stride)
		}
		return
	}
	op := opRunLoad + uint8(kind)
	for rows > 0 {
		c := rows
		if c > int(^uint16(0)) {
			c = int(^uint16(0))
		}
		r.append(record{op: op, addr: addr, n: uint32(rowBytes), stride: uint32(stride), unit: unit, rows: uint16(c)})
		addr += uint64(stride) * uint64(c)
		rows -= c
	}
}

// Ops implements simmem.Tracer. Counts accumulate and flush at phase
// boundaries and at Finish — their position between those points
// cannot affect any tracer (they are pure counter additions), and
// coalescing them removes about a quarter of all records.
func (r *Recorder) Ops(n uint64) { r.pendOps += n }

func (r *Recorder) flushOps() {
	if r.pendOps != 0 {
		r.append(record{op: opOps, addr: r.pendOps})
		r.pendOps = 0
	}
}

func (r *Recorder) phase(name string) uint64 {
	if i, ok := r.phaseIdx[name]; ok {
		return uint64(i)
	}
	i := uint32(len(r.t.phaseNames))
	r.t.phaseNames = append(r.t.phaseNames, name)
	r.phaseIdx[name] = i
	return uint64(i)
}

// PhaseBegin implements the codec's PhaseRecorder.
func (r *Recorder) PhaseBegin(name string) {
	r.flushOps()
	r.append(record{op: opPhaseBegin, addr: r.phase(name)})
}

// PhaseEnd implements the codec's PhaseRecorder.
func (r *Recorder) PhaseEnd(name string) {
	r.flushOps()
	r.append(record{op: opPhaseEnd, addr: r.phase(name)})
}

// Finish flushes pending state and returns the captured trace. The
// Recorder may continue to append afterwards (Finish just snapshots the
// flush point), but the usual lifecycle is record, Finish, drop the
// Recorder.
func (r *Recorder) Finish() *Trace {
	r.flushOps()
	return r.t
}
