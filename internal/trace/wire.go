// Portable trace files. A captured Trace or L2Trace can be written to
// any io.Writer and read back on any machine, so a workload is encoded
// once and every simulation — local or on a remote worker — is a replay
// of the same bytes (internal/dist ships traces to worker processes in
// exactly this format).
//
// The format is versioned and fully validated on the way in: corrupt,
// truncated or wrong-version input yields an error, never a panic — the
// decode side is safe to expose to network input (and is fuzzed, see
// wire_fuzz_test.go).
//
// Layout (all integers are unsigned varints unless noted; addresses are
// zigzag varint deltas against the previous address, which keeps the
// mostly-sequential reference streams of the codec to a few bytes per
// record):
//
//	Trace   file: "M4TR" version
//	              phase-name table: count, then per name: length, bytes
//	              record count
//	              records: op byte, then per op class:
//	                access:  addrDelta(zigzag) size
//	                run:     addrDelta(zigzag) rowBytes unit rows [stride if rows>1]
//	                ops:     count
//	                phase:   name index
//
//	L2Trace file: "M4L2" version
//	              L1 geometry: name length+bytes, size, line, ways,
//	                [version >= 2: policy length+bytes, seed]
//	              base Stats (12 counters)
//	              phase-name table (as above)
//	              event count, then per event: zigzag delta of the
//	                packed (addr<<1|writeback) word
//	              mark count, then per mark: position delta, name index,
//	                begin byte, 12 counter deltas against the previous mark
//
// Versioning rule: readers accept exactly the versions they know;
// anything else is an error (no silent best-effort decoding). Additive
// changes bump the version and readers grow a case for the old one —
// version 2 added the L1 replacement policy and random-victim seed to
// the M4L2 header (a version-1 file decodes as LRU, which is what
// every version-1 writer simulated).
package trace

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"io"

	"repro/internal/cache"
)

// The formats are versioned independently so a change to one does not
// orphan readers of the other: version 2 touched only the M4L2 header
// (L1 policy + seed), so M4TR files keep writing version 1 and stay
// readable by every deployed pre-policy binary. M4L2 readers accept
// version 1 too, decoded with the LRU defaults its writers simulated.
const (
	TraceWireVersion = 1 // M4TR
	L2WireVersion    = 2 // M4L2; v2 added the L1 policy and seed
)

var (
	traceMagic = [4]byte{'M', '4', 'T', 'R'}
	l2Magic    = [4]byte{'M', '4', 'L', '2'}

	// hashMagic opens the optional content-hash trailer appended after
	// the body of either format: magic + 32 raw SHA-256 bytes of the
	// body. The trailer is outside the hashed region and outside the
	// versioned body, so both wire versions are unchanged; readers
	// accept streams that end at the body (written before the trailer
	// existed) and verify the digest when present.
	hashMagic = [4]byte{'M', '4', 'H', 'S'}
)

// hashTrailerLen is the on-wire size of the M4HS trailer.
const hashTrailerLen = 4 + sha256.Size

// ErrBadFormat tags every decode failure: wrong magic, unknown version,
// truncation, or a structurally invalid field. errors.Is(err,
// ErrBadFormat) holds for all of them (I/O errors from the underlying
// reader pass through unwrapped).
var ErrBadFormat = errors.New("malformed trace data")

func badf(format string, args ...any) error {
	return fmt.Errorf("trace: %s: %w", fmt.Sprintf(format, args...), ErrBadFormat)
}

// Decode-side sanity caps: larger values in a header mean a corrupt or
// hostile file, not a real capture. The address bound matters for
// safety, not just plausibility: replay walks cache lines with
// `for a := first; a <= last; a += lineBytes`, so an address near the
// top of the 64-bit space would wrap the loop counter and spin
// forever. Capping decoded addresses at 2^56 keeps every replay span
// (addr + stride*rows + length, each field individually bounded) far
// below 2^64. The simulated address space never leaves the low
// terabytes, so no legitimate capture is affected.
const (
	maxWireNames   = 1 << 20
	maxWireNameLen = 1 << 16
	maxWireAddr    = 1 << 56
)

// ---- encoding helpers ----

// wireWriter wraps the destination with buffering, varint helpers and
// write-count tracking for the io.WriterTo contract. Every body byte
// also streams through a SHA-256 digest, so the content hash falls out
// of encoding for free.
type wireWriter struct {
	bw  *bufio.Writer
	h   hash.Hash // body digest; trailer bytes bypass it
	n   int64
	err error
	tmp [binary.MaxVarintLen64]byte
}

func newWireWriter(w io.Writer) *wireWriter {
	return &wireWriter{bw: bufio.NewWriter(w), h: sha256.New()}
}

func (w *wireWriter) write(p []byte) {
	if w.err != nil {
		return
	}
	n, err := w.bw.Write(p)
	w.h.Write(p[:n])
	w.n += int64(n)
	w.err = err
}

// raw writes p without updating the body digest (trailer bytes only).
func (w *wireWriter) raw(p []byte) {
	if w.err != nil {
		return
	}
	n, err := w.bw.Write(p)
	w.n += int64(n)
	w.err = err
}

// trailer appends the M4HS content-hash trailer and flushes, returning
// the body hash alongside the io.WriterTo results.
func (w *wireWriter) trailer() (Hash, int64, error) {
	var sum Hash
	w.h.Sum(sum[:0])
	w.raw(hashMagic[:])
	w.raw(sum[:])
	n, err := w.flush()
	return sum, n, err
}

func (w *wireWriter) byte(b byte) { w.write([]byte{b}) }

func (w *wireWriter) uvarint(v uint64) {
	w.write(w.tmp[:binary.PutUvarint(w.tmp[:], v)])
}

// svarint writes v zigzag-encoded.
func (w *wireWriter) svarint(v int64) {
	w.uvarint(uint64(v)<<1 ^ uint64(v>>63))
}

func (w *wireWriter) string(s string) {
	w.uvarint(uint64(len(s)))
	w.write([]byte(s))
}

func (w *wireWriter) flush() (int64, error) {
	if w.err == nil {
		w.err = w.bw.Flush()
	}
	return w.n, w.err
}

// ---- decoding helpers ----

// wireReader wraps the source with buffering and validated varint
// reads. Truncation surfaces as an ErrBadFormat-tagged error. Body
// bytes stream through a SHA-256 digest as they are consumed, so the
// decoder knows the content hash (and can verify the M4HS trailer)
// without a second pass.
type wireReader struct {
	br *bufio.Reader
	h  hash.Hash
	n  int64
	hb [1]byte
}

func newWireReader(r io.Reader) *wireReader {
	return &wireReader{br: bufio.NewReader(r), h: sha256.New()}
}

func (r *wireReader) ReadByte() (byte, error) {
	b, err := r.br.ReadByte()
	if err == nil {
		r.n++
		r.hb[0] = b
		r.h.Write(r.hb[:])
	}
	return b, err
}

func (r *wireReader) full(p []byte) error {
	n, err := io.ReadFull(r.br, p)
	r.h.Write(p[:n])
	r.n += int64(n)
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return badf("truncated input")
	}
	return err
}

// verifyTrailer consumes the optional M4HS trailer after a fully
// decoded body and returns the content hash. A stream ending cleanly
// at the body is a legacy hash-less encoding: accepted, with the
// computed body digest as its hash. A present trailer must match the
// computed digest exactly; anything else — wrong magic, truncation, a
// stored digest that disagrees with the bytes actually read — is a
// format error.
func (r *wireReader) verifyTrailer() (Hash, error) {
	var sum Hash
	r.h.Sum(sum[:0])
	// The trailer is read around the digest, not through it.
	var magic [4]byte
	n, err := io.ReadFull(r.br, magic[:])
	r.n += int64(n)
	if err == io.EOF {
		return sum, nil // pre-trailer stream
	}
	if err == io.ErrUnexpectedEOF {
		return Hash{}, badf("truncated hash trailer")
	}
	if err != nil {
		return Hash{}, err
	}
	if magic != hashMagic {
		return Hash{}, badf("bad hash trailer magic %q", magic)
	}
	var stored Hash
	n, err = io.ReadFull(r.br, stored[:])
	r.n += int64(n)
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return Hash{}, badf("truncated hash trailer")
	}
	if err != nil {
		return Hash{}, err
	}
	if stored != sum {
		return Hash{}, badf("content hash mismatch: trailer says %s, body is %s", stored, sum)
	}
	return sum, nil
}

func (r *wireReader) uvarint(what string) (uint64, error) {
	v, err := binary.ReadUvarint(r)
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return 0, badf("truncated %s", what)
	}
	if err != nil {
		// binary.ReadUvarint reports overlong encodings via errors.New;
		// tag them as format errors, pass real I/O errors through.
		if err.Error() == "binary: varint overflows a 64-bit integer" {
			return 0, badf("%s: %v", what, err)
		}
		return 0, err
	}
	return v, nil
}

func (r *wireReader) svarint(what string) (int64, error) {
	v, err := r.uvarint(what)
	if err != nil {
		return 0, err
	}
	return int64(v>>1) ^ -int64(v&1), nil
}

func (r *wireReader) uint32Field(what string) (uint32, error) {
	v, err := r.uvarint(what)
	if err != nil {
		return 0, err
	}
	if v > uint64(^uint32(0)) {
		return 0, badf("%s %d overflows 32 bits", what, v)
	}
	return uint32(v), nil
}

func (r *wireReader) header(magic [4]byte, kind string, maxVersion uint64) (int, error) {
	var got [4]byte
	if err := r.full(got[:]); err != nil {
		return 0, err
	}
	if got != magic {
		return 0, badf("not a %s file (magic %q)", kind, got)
	}
	v, err := r.uvarint("version")
	if err != nil {
		return 0, err
	}
	if v < 1 || v > maxVersion {
		return 0, badf("unsupported %s version %d (reader speaks 1..%d)", kind, v, maxVersion)
	}
	return int(v), nil
}

func (r *wireReader) nameTable() ([]string, error) {
	n, err := r.uvarint("name count")
	if err != nil {
		return nil, err
	}
	if n > maxWireNames {
		return nil, badf("name count %d exceeds limit", n)
	}
	names := make([]string, n)
	for i := range names {
		l, err := r.uvarint("name length")
		if err != nil {
			return nil, err
		}
		if l > maxWireNameLen {
			return nil, badf("name length %d exceeds limit", l)
		}
		buf := make([]byte, l)
		if err := r.full(buf); err != nil {
			return nil, err
		}
		names[i] = string(buf)
	}
	return names, nil
}

func writeNameTable(w *wireWriter, names []string) {
	w.uvarint(uint64(len(names)))
	for _, n := range names {
		w.string(n)
	}
}

// ---- Trace ----

var _ io.WriterTo = (*Trace)(nil)
var _ io.ReaderFrom = (*Trace)(nil)

// WriteTo encodes the trace in the portable wire format, including the
// M4HS content-hash trailer.
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	ww := newWireWriter(w)
	t.encodeBody(ww)
	sum, n, err := ww.trailer()
	if err == nil {
		t.hcache.set(sum)
	}
	return n, err
}

// Hash returns the trace's canonical content hash: the SHA-256 of its
// wire-format body. The value is computed as a side effect of WriteTo
// or decoding and cached; a trace that has done neither is encoded to
// a discarded stream. Only call once the trace is complete.
func (t *Trace) Hash() Hash {
	if h, ok := t.hcache.get(); ok {
		return h
	}
	ww := newWireWriter(io.Discard)
	t.encodeBody(ww)
	sum, _, _ := ww.trailer()
	t.hcache.set(sum)
	return sum
}

func (t *Trace) encodeBody(ww *wireWriter) {
	ww.write(traceMagic[:])
	ww.uvarint(TraceWireVersion)
	writeNameTable(ww, t.phaseNames)
	ww.uvarint(uint64(t.records))
	prevAddr := uint64(0)
	for _, ch := range t.chunks {
		for i := range ch {
			op, addr, n, stride, unit, rows := t.expand(ch[i])
			ww.byte(op)
			switch op {
			case opAccessLoad, opAccessStore, opAccessPrefetch:
				ww.svarint(int64(addr - prevAddr))
				prevAddr = addr
				ww.uvarint(uint64(n))
			case opRunLoad, opRunStore, opRunPrefetch:
				ww.svarint(int64(addr - prevAddr))
				prevAddr = addr
				ww.uvarint(uint64(n))
				ww.uvarint(uint64(unit))
				ww.uvarint(uint64(rows))
				if rows > 1 {
					ww.uvarint(uint64(stride))
				}
			default: // opOps, opPhaseBegin, opPhaseEnd: payload is a count/index
				ww.uvarint(addr)
			}
		}
	}
}

// ReadFrom decodes a wire-format trace, replacing t's contents. On
// error t is left empty, never partially filled.
func (t *Trace) ReadFrom(r io.Reader) (int64, error) {
	wr := newWireReader(r)
	dec, err := readTrace(wr)
	if err != nil {
		*t = Trace{}
		return wr.n, err
	}
	*t = *dec
	return wr.n, nil
}

// ReadTrace decodes a wire-format trace from r.
func ReadTrace(r io.Reader) (*Trace, error) {
	t := &Trace{}
	_, err := t.ReadFrom(r)
	if err != nil {
		return nil, err
	}
	return t, nil
}

func readTrace(r *wireReader) (*Trace, error) {
	if _, err := r.header(traceMagic, "trace", TraceWireVersion); err != nil {
		return nil, err
	}
	names, err := r.nameTable()
	if err != nil {
		return nil, err
	}
	count, err := r.uvarint("record count")
	if err != nil {
		return nil, err
	}
	t := &Trace{phaseNames: names}
	// Route decoded records through the Recorder's appendRecord so the
	// wire path packs (and wide-spills) identically to live capture.
	app := &Recorder{t: t}
	prevAddr := uint64(0)
	for i := uint64(0); i < count; i++ {
		op, err := r.ReadByte()
		if err != nil {
			return nil, badf("truncated at record %d", i)
		}
		switch op {
		case opAccessLoad, opAccessStore, opAccessPrefetch:
			d, err := r.svarint("address delta")
			if err != nil {
				return nil, err
			}
			prevAddr += uint64(d)
			if prevAddr > maxWireAddr {
				return nil, badf("address %#x exceeds the %#x bound", prevAddr, uint64(maxWireAddr))
			}
			n, err := r.uint32Field("access size")
			if err != nil {
				return nil, err
			}
			app.appendRecord(op, prevAddr, n, 0, 0, 0)
		case opRunLoad, opRunStore, opRunPrefetch:
			d, err := r.svarint("address delta")
			if err != nil {
				return nil, err
			}
			prevAddr += uint64(d)
			if prevAddr > maxWireAddr {
				return nil, badf("address %#x exceeds the %#x bound", prevAddr, uint64(maxWireAddr))
			}
			n, err := r.uint32Field("run length")
			if err != nil {
				return nil, err
			}
			unit, err := r.uint32Field("run unit")
			if err != nil {
				return nil, err
			}
			rows, err := r.uvarint("run rows")
			if err != nil {
				return nil, err
			}
			if rows == 0 || rows > uint64(^uint16(0)) {
				return nil, badf("run rows %d out of range", rows)
			}
			var stride uint32
			if rows > 1 {
				if stride, err = r.uint32Field("run stride"); err != nil {
					return nil, err
				}
			}
			app.appendRecord(op, prevAddr, n, stride, unit, uint16(rows))
		case opOps:
			cnt, err := r.uvarint("ops count")
			if err != nil {
				return nil, err
			}
			app.appendRecord(op, cnt, 0, 0, 0, 0)
		case opPhaseBegin, opPhaseEnd:
			idx, err := r.uvarint("phase index")
			if err != nil {
				return nil, err
			}
			if idx >= uint64(len(names)) {
				return nil, badf("phase index %d out of range (table has %d)", idx, len(names))
			}
			app.appendRecord(op, idx, 0, 0, 0, 0)
		default:
			return nil, badf("unknown record op %d", op)
		}
	}
	sum, err := r.verifyTrailer()
	if err != nil {
		return nil, err
	}
	t.hcache = &hashCache{}
	t.hcache.set(sum)
	return t, nil
}

// ---- L2Trace ----

var _ io.WriterTo = (*L2Trace)(nil)
var _ io.ReaderFrom = (*L2Trace)(nil)

// statsFields flattens the counter block in wire order.
func statsFields(s *cache.Stats) [12]*uint64 {
	return [12]*uint64{
		&s.Loads, &s.Stores, &s.LoadBytes, &s.StoreBytes, &s.Ops,
		&s.L1Misses, &s.L1Writebacks, &s.L2Accesses, &s.L2Misses,
		&s.L2Writebacks, &s.Prefetches, &s.PrefetchL1Hits,
	}
}

func writeStatsDelta(w *wireWriter, s, prev cache.Stats) {
	sf, pf := statsFields(&s), statsFields(&prev)
	for i := range sf {
		// Counters are monotonic, so deltas are non-negative and small;
		// wraparound subtraction keeps even a non-monotonic (hand-built)
		// Stats lossless.
		w.uvarint(*sf[i] - *pf[i])
	}
}

func readStatsDelta(r *wireReader, prev cache.Stats) (cache.Stats, error) {
	s := prev
	sf := statsFields(&s)
	for i := range sf {
		d, err := r.uvarint("counter")
		if err != nil {
			return cache.Stats{}, err
		}
		*sf[i] += d
	}
	return s, nil
}

// WriteTo encodes the L1-filtered trace in the portable wire format,
// including the M4HS content-hash trailer.
func (t *L2Trace) WriteTo(w io.Writer) (int64, error) {
	ww := newWireWriter(w)
	t.encodeBody(ww)
	sum, n, err := ww.trailer()
	if err == nil {
		t.hcache.set(sum)
	}
	return n, err
}

// Hash returns the filtered trace's canonical content hash (see
// Trace.Hash). Because the wire encoding carries no capture chunking,
// the hash depends only on the L1 geometry and the L2-bound event
// stream — identical streams hash identically however they were
// captured.
func (t *L2Trace) Hash() Hash {
	if h, ok := t.hcache.get(); ok {
		return h
	}
	ww := newWireWriter(io.Discard)
	t.encodeBody(ww)
	sum, _, _ := ww.trailer()
	t.hcache.set(sum)
	return sum
}

func (t *L2Trace) encodeBody(ww *wireWriter) {
	ww.write(l2Magic[:])
	ww.uvarint(L2WireVersion)
	ww.string(t.L1.Name)
	ww.uvarint(uint64(t.L1.SizeBytes))
	ww.uvarint(uint64(t.L1.LineBytes))
	ww.uvarint(uint64(t.L1.Ways))
	ww.string(string(t.L1.Policy))
	ww.uvarint(t.L1.Seed)
	writeStatsDelta(ww, t.base, cache.Stats{})
	writeNameTable(ww, t.names)
	ww.uvarint(uint64(len(t.events)))
	prev := uint64(0)
	for _, ev := range t.events {
		ww.svarint(int64(ev - prev))
		prev = ev
	}
	ww.uvarint(uint64(len(t.marks)))
	prevPos, prevStats := 0, cache.Stats{}
	for i := range t.marks {
		m := &t.marks[i]
		ww.uvarint(uint64(m.pos - prevPos))
		prevPos = m.pos
		ww.uvarint(uint64(m.name))
		if m.begin {
			ww.byte(1)
		} else {
			ww.byte(0)
		}
		writeStatsDelta(ww, m.base, prevStats)
		prevStats = m.base
	}
}

// ReadFrom decodes a wire-format L2 trace, replacing t's contents. On
// error t is left empty, never partially filled.
func (t *L2Trace) ReadFrom(r io.Reader) (int64, error) {
	wr := newWireReader(r)
	dec, err := readL2Trace(wr)
	if err != nil {
		*t = L2Trace{}
		return wr.n, err
	}
	*t = *dec
	return wr.n, nil
}

// ReadL2Trace decodes a wire-format L1-filtered trace from r.
func ReadL2Trace(r io.Reader) (*L2Trace, error) {
	t := &L2Trace{}
	_, err := t.ReadFrom(r)
	if err != nil {
		return nil, err
	}
	return t, nil
}

func readL2Trace(r *wireReader) (*L2Trace, error) {
	ver, err := r.header(l2Magic, "l2trace", L2WireVersion)
	if err != nil {
		return nil, err
	}
	nameLen, err := r.uvarint("L1 name length")
	if err != nil {
		return nil, err
	}
	if nameLen > maxWireNameLen {
		return nil, badf("L1 name length %d exceeds limit", nameLen)
	}
	nameBuf := make([]byte, nameLen)
	if err := r.full(nameBuf); err != nil {
		return nil, err
	}
	t := &L2Trace{L1: cache.Config{Name: string(nameBuf)}}
	for _, f := range []struct {
		dst  *int
		what string
	}{
		{&t.L1.SizeBytes, "L1 size"},
		{&t.L1.LineBytes, "L1 line size"},
		{&t.L1.Ways, "L1 ways"},
	} {
		v, err := r.uvarint(f.what)
		if err != nil {
			return nil, err
		}
		if v > uint64(^uint32(0)) {
			return nil, badf("%s %d out of range", f.what, v)
		}
		*f.dst = int(v)
	}
	if ver >= 2 {
		// Version 2 header: replacement policy + random-victim seed. A
		// version-1 file leaves both zero — the LRU default its writer
		// simulated under.
		polLen, err := r.uvarint("L1 policy length")
		if err != nil {
			return nil, err
		}
		if polLen > maxWireNameLen {
			return nil, badf("L1 policy length %d exceeds limit", polLen)
		}
		polBuf := make([]byte, polLen)
		if err := r.full(polBuf); err != nil {
			return nil, err
		}
		t.L1.Policy = cache.Policy(polBuf)
		if t.L1.Seed, err = r.uvarint("L1 seed"); err != nil {
			return nil, err
		}
	}
	if err := t.L1.Validate(); err != nil {
		return nil, badf("L1 geometry: %v", err)
	}
	if t.base, err = readStatsDelta(r, cache.Stats{}); err != nil {
		return nil, err
	}
	if t.names, err = r.nameTable(); err != nil {
		return nil, err
	}
	nEvents, err := r.uvarint("event count")
	if err != nil {
		return nil, err
	}
	prev := uint64(0)
	for i := uint64(0); i < nEvents; i++ {
		d, err := r.svarint("event delta")
		if err != nil {
			return nil, err
		}
		prev += uint64(d)
		if prev>>1 > maxWireAddr {
			return nil, badf("event address %#x exceeds the %#x bound", prev>>1, uint64(maxWireAddr))
		}
		t.events = append(t.events, prev)
	}
	nMarks, err := r.uvarint("mark count")
	if err != nil {
		return nil, err
	}
	prevPos, prevStats := uint64(0), cache.Stats{}
	for i := uint64(0); i < nMarks; i++ {
		d, err := r.uvarint("mark position delta")
		if err != nil {
			return nil, err
		}
		prevPos += d
		if prevPos > nEvents {
			return nil, badf("mark position %d beyond %d events", prevPos, nEvents)
		}
		nameIdx, err := r.uvarint("mark name index")
		if err != nil {
			return nil, err
		}
		if nameIdx >= uint64(len(t.names)) {
			return nil, badf("mark name index %d out of range (table has %d)", nameIdx, len(t.names))
		}
		beginByte, err := r.ReadByte()
		if err != nil {
			return nil, badf("truncated at mark %d", i)
		}
		if beginByte > 1 {
			return nil, badf("mark begin flag %d invalid", beginByte)
		}
		base, err := readStatsDelta(r, prevStats)
		if err != nil {
			return nil, err
		}
		prevStats = base
		t.marks = append(t.marks, l2Mark{
			pos:   int(prevPos),
			name:  uint32(nameIdx),
			begin: beginByte == 1,
			base:  base,
		})
	}
	sum, err := r.verifyTrailer()
	if err != nil {
		return nil, err
	}
	t.hcache = &hashCache{}
	t.hcache.set(sum)
	return t, nil
}
