package trace

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/cache"
	"repro/internal/simmem"
)

// synthTrace records a random reference stream through a real Recorder:
// scalar accesses, flat and strided runs, op counts, phase markers
// (some unmatched), and — when withPrefetch is set — prefetches, which
// exercise the poisoned-set slow path of the parallel filter.
func synthTrace(rng *rand.Rand, records int, withPrefetch bool) *Trace {
	r := NewRecorder()
	names := []string{"dct", "quant", "mc", "orphan"}
	span := uint64(1 << (12 + rng.Intn(5)))
	hot := uint64(rng.Intn(int(span)))
	addr := func() uint64 {
		if rng.Intn(8) == 0 {
			hot = uint64(rng.Intn(int(span)))
		}
		if rng.Intn(3) == 0 {
			return uint64(rng.Intn(int(span)))
		}
		return (hot + uint64(rng.Intn(256))) % span
	}
	for i := 0; i < records; i++ {
		switch c := rng.Intn(20); {
		case c == 0:
			r.Ops(uint64(rng.Intn(5000)))
		case c == 1:
			if rng.Intn(2) == 0 {
				r.PhaseBegin(names[rng.Intn(len(names))])
			} else {
				r.PhaseEnd(names[rng.Intn(len(names))])
			}
		case c == 2 && withPrefetch:
			r.Access(addr(), 0, simmem.Prefetch)
		case c < 8:
			r.Run(addr(), 1+rng.Intn(300), 4, simmem.Kind(rng.Intn(2)))
		case c < 10:
			r.RunStrided(addr(), 1+rng.Intn(128), rng.Intn(256), 1+rng.Intn(6), 8, simmem.Kind(rng.Intn(2)))
		case c < 11 && withPrefetch:
			r.RunStrided(addr(), 1+rng.Intn(96), 64+rng.Intn(64), 1+rng.Intn(4), 0, simmem.Prefetch)
		default:
			r.Access(addr(), 1+uint32(rng.Intn(64)), simmem.Kind(rng.Intn(2)))
		}
	}
	return r.Finish()
}

// serialFilter is the reference implementation the parallel filter must
// reproduce byte for byte.
func serialFilter(tr *Trace, l1 cache.Config) *L2Trace {
	f := NewL2Filter(l1)
	tr.Replay(f, f)
	return f.Trace()
}

func sameL2Trace(t *testing.T, ctx string, got, want *L2Trace) {
	t.Helper()
	if got.L1 != want.L1 {
		t.Fatalf("%s: L1 = %+v, want %+v", ctx, got.L1, want.L1)
	}
	if got.base != want.base {
		t.Fatalf("%s: base = %+v, want %+v", ctx, got.base, want.base)
	}
	if !reflect.DeepEqual(got.events, want.events) {
		for i := range want.events {
			if i >= len(got.events) || got.events[i] != want.events[i] {
				t.Fatalf("%s: events diverge at %d/%d: got %v want %v",
					ctx, i, len(want.events), at(got.events, i), at(want.events, i))
			}
		}
		t.Fatalf("%s: %d events, want %d", ctx, len(got.events), len(want.events))
	}
	if !reflect.DeepEqual(got.marks, want.marks) {
		t.Fatalf("%s: marks = %+v,\nwant %+v", ctx, got.marks, want.marks)
	}
	if !reflect.DeepEqual(got.names, want.names) {
		t.Fatalf("%s: names = %v, want %v", ctx, got.names, want.names)
	}
}

func at(ev []uint64, i int) any {
	if i < len(ev) {
		return ev[i]
	}
	return "EOF"
}

// TestFilterL2ParallelProperty: the parallel filter equals the serial
// one byte-identically across random traces, chunk sizes, worker
// counts, geometries and policies (non-LRU policies via the fallback).
func TestFilterL2ParallelProperty(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		rng := rand.New(rand.NewSource(100 + seed))
		tr := synthTrace(rng, 1500+rng.Intn(4000), seed%2 == 0)
		for _, pol := range propPolicies {
			l1 := cache.Config{
				SizeBytes: 1 << (9 + rng.Intn(4)),
				LineBytes: 32,
				Ways:      1 << rng.Intn(3),
				Policy:    pol,
			}
			want := serialFilter(tr, l1)
			for trial := 0; trial < 3; trial++ {
				chunk := 40 + rng.Intn(2500)
				workers := 2 + rng.Intn(6)
				chunkEventsOverride.Store(int32(chunk))
				got := tr.FilterL2Parallel(l1, workers)
				chunkEventsOverride.Store(0)
				sameL2Trace(t, "seed/policy/chunk/workers", got, want)
			}
		}
	}
}

// TestFilterL2ParallelPrefetchPoison drives a prefetch-dense stream
// through a tiny L1 so nearly every chunk poisons sets, pinning the
// slow-op resimulation path against the serial filter.
func TestFilterL2ParallelPrefetchPoison(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	r := NewRecorder()
	for i := 0; i < 30000; i++ {
		a := uint64(rng.Intn(1 << 13))
		switch rng.Intn(3) {
		case 0:
			r.Access(a, 0, simmem.Prefetch)
		case 1:
			r.Access(a, 1+uint32(rng.Intn(32)), simmem.Store)
		default:
			r.Access(a, 1+uint32(rng.Intn(32)), simmem.Load)
		}
		if rng.Intn(512) == 0 {
			r.PhaseBegin("p")
		}
		if rng.Intn(512) == 0 {
			r.PhaseEnd("p")
		}
	}
	tr := r.Finish()
	for _, l1 := range []cache.Config{
		{SizeBytes: 1 << 9, LineBytes: 32, Ways: 1},
		{SizeBytes: 1 << 10, LineBytes: 32, Ways: 2},
		{SizeBytes: 1 << 11, LineBytes: 64, Ways: 4},
	} {
		want := serialFilter(tr, l1)
		for _, chunk := range []int{97, 512, 4096} {
			chunkEventsOverride.Store(int32(chunk))
			got := tr.FilterL2Parallel(l1, 4)
			chunkEventsOverride.Store(0)
			sameL2Trace(t, "poison", got, want)
		}
	}
}

// TestReplayHierarchyParallelMatchesSerial: the composed parallel
// filter + parallel L2 replay equals the serial filtered replay for
// whole-run and per-phase stats.
func TestReplayHierarchyParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tr := synthTrace(rng, 6000, true)
	l1 := cache.Config{SizeBytes: 1 << 10, LineBytes: 32, Ways: 2}
	l2 := cache.Config{SizeBytes: 1 << 13, LineBytes: 128, Ways: 4}
	wantWhole, wantPhases := serialFilter(tr, l1).Replay(l2)
	chunkEventsOverride.Store(301)
	defer chunkEventsOverride.Store(0)
	gotWhole, gotPhases := tr.ReplayHierarchyParallel(l1, l2, 5)
	if gotWhole != wantWhole {
		t.Fatalf("whole = %+v, want %+v", gotWhole, wantWhole)
	}
	if !reflect.DeepEqual(gotPhases, wantPhases) {
		t.Fatalf("phases = %+v, want %+v", gotPhases, wantPhases)
	}
}

// TestFilterL2ParallelConcurrent filters one shared trace from several
// goroutines at once — the -race run proves workers share nothing but
// the read-only trace.
func TestFilterL2ParallelConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	tr := synthTrace(rng, 20000, true)
	l1 := cache.Config{SizeBytes: 1 << 10, LineBytes: 32, Ways: 2}
	want := serialFilter(tr, l1)
	chunkEventsOverride.Store(512)
	defer chunkEventsOverride.Store(0)
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got := tr.FilterL2Parallel(l1, 4)
			if !reflect.DeepEqual(got.events, want.events) || got.base != want.base {
				t.Errorf("concurrent parallel filter diverged")
			}
		}()
	}
	wg.Wait()
}
