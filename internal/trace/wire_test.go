package trace

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/cache"
)

// encodeTrace serializes t and fails the test on error.
func encodeTrace(t *testing.T, tr *Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	n, err := tr.WriteTo(&buf)
	if err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	return buf.Bytes()
}

func encodeL2Trace(t *testing.T, lt *L2Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	n, err := lt.WriteTo(&buf)
	if err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	return buf.Bytes()
}

// TestTraceWireRoundTrip is the wire-format property test: for random
// reference streams, decode(encode(t)) replays counter-identically to t
// across several cache geometries, including per-phase deltas and LRU
// invariants.
func TestTraceWireRoundTrip(t *testing.T) {
	geoms := []struct{ l1, l2 cache.Config }{
		{l1Config(), l2Config(1 << 20)},
		{cache.Config{Name: "L1", SizeBytes: 16 << 10, LineBytes: 32, Ways: 2}, l2Config(256 << 10)},
		{cache.Config{Name: "L1", SizeBytes: 32 << 10, LineBytes: 64, Ways: 4}, l2Config(512 << 10)},
	}
	for seed := int64(1); seed <= 8; seed++ {
		rec := NewRecorder()
		randomStream(rand.New(rand.NewSource(seed)), 4000, rec, rec)
		orig := rec.Finish()

		data := encodeTrace(t, orig)
		dec, err := ReadTrace(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("seed %d: decode: %v", seed, err)
		}
		if dec.Records() != orig.Records() {
			t.Fatalf("seed %d: %d records decoded, want %d", seed, dec.Records(), orig.Records())
		}
		if !reflect.DeepEqual(dec.phaseNames, orig.phaseNames) {
			t.Fatalf("seed %d: phase names %v != %v", seed, dec.phaseNames, orig.phaseNames)
		}
		for _, g := range geoms {
			want := newLiveHierarchy(g.l1, g.l2)
			orig.Replay(want.Hierarchy, want)
			got := newLiveHierarchy(g.l1, g.l2)
			dec.Replay(got.Hierarchy, got)
			if got.Snapshot() != want.Snapshot() {
				t.Fatalf("seed %d geom %v: decoded replay differs\nwant %+v\ngot  %+v",
					seed, g, want.Snapshot(), got.Snapshot())
			}
			if !reflect.DeepEqual(got.acc, want.acc) {
				t.Fatalf("seed %d geom %v: phase deltas differ\nwant %+v\ngot  %+v",
					seed, g, want.acc, got.acc)
			}
			if err := got.L1.CheckLRUInvariant(); err != nil {
				t.Fatalf("seed %d: L1 invariant after decoded replay: %v", seed, err)
			}
		}
	}
}

// TestL2TraceWireRoundTrip: the filtered trace round-trips to identical
// whole-run Stats and phase deltas for every replayed L2 geometry.
func TestL2TraceWireRoundTrip(t *testing.T) {
	l2s := []cache.Config{
		l2Config(256 << 10),
		l2Config(1 << 20),
		{Name: "L2", SizeBytes: 512 << 10, LineBytes: 128, Ways: 4},
	}
	for seed := int64(1); seed <= 8; seed++ {
		f := NewL2Filter(l1Config())
		randomStream(rand.New(rand.NewSource(seed)), 4000, f, f)
		orig := f.Trace()

		data := encodeL2Trace(t, orig)
		dec, err := ReadL2Trace(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("seed %d: decode: %v", seed, err)
		}
		if dec.L1 != orig.L1 {
			t.Fatalf("seed %d: L1 config %+v != %+v", seed, dec.L1, orig.L1)
		}
		if dec.Events() != orig.Events() {
			t.Fatalf("seed %d: %d events decoded, want %d", seed, dec.Events(), orig.Events())
		}
		for _, l2 := range l2s {
			wantWhole, wantPhases := orig.Replay(l2)
			gotWhole, gotPhases := dec.Replay(l2)
			if gotWhole != wantWhole {
				t.Fatalf("seed %d l2=%d: whole stats differ\nwant %+v\ngot  %+v",
					seed, l2.SizeBytes, wantWhole, gotWhole)
			}
			if !reflect.DeepEqual(gotPhases, wantPhases) {
				t.Fatalf("seed %d l2=%d: phase stats differ\nwant %+v\ngot  %+v",
					seed, l2.SizeBytes, wantPhases, gotPhases)
			}
		}
	}
}

// TestTraceWireEmpty: zero-record traces survive the trip.
func TestTraceWireEmpty(t *testing.T) {
	dec, err := ReadTrace(bytes.NewReader(encodeTrace(t, NewRecorder().Finish())))
	if err != nil {
		t.Fatalf("decode empty trace: %v", err)
	}
	if dec.Records() != 0 {
		t.Fatalf("empty trace decoded to %d records", dec.Records())
	}
	f := NewL2Filter(l1Config())
	ldec, err := ReadL2Trace(bytes.NewReader(encodeL2Trace(t, f.Trace())))
	if err != nil {
		t.Fatalf("decode empty l2 trace: %v", err)
	}
	if ldec.Events() != 0 {
		t.Fatalf("empty l2 trace decoded to %d events", ldec.Events())
	}
}

// TestTraceWireTruncation: every proper prefix of a valid encoding is
// rejected with an ErrBadFormat-tagged error, never a panic — with one
// deliberate exception: the prefix ending exactly at the body is a
// valid legacy hash-less stream (pre-trailer writers produced exactly
// those bytes), so it must decode, and to the same content hash.
func TestTraceWireTruncation(t *testing.T) {
	rec := NewRecorder()
	randomStream(rand.New(rand.NewSource(3)), 200, rec, rec)
	data := encodeTrace(t, rec.Finish())
	bodyLen := len(data) - hashTrailerLen
	for cut := 0; cut < len(data); cut++ {
		dec, err := ReadTrace(bytes.NewReader(data[:cut]))
		if cut == bodyLen {
			if err != nil {
				t.Fatalf("legacy body-only prefix rejected: %v", err)
			}
			full, err := ReadTrace(bytes.NewReader(data))
			if err != nil {
				t.Fatal(err)
			}
			if dec.Hash() != full.Hash() {
				t.Fatalf("legacy stream hash %s != trailered hash %s", dec.Hash(), full.Hash())
			}
			continue
		}
		if err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded without error", cut, len(data))
		} else if !errors.Is(err, ErrBadFormat) {
			t.Fatalf("prefix of %d bytes: error %v not tagged ErrBadFormat", cut, err)
		}
	}

	f := NewL2Filter(l1Config())
	randomStream(rand.New(rand.NewSource(3)), 200, f, f)
	ldata := encodeL2Trace(t, f.Trace())
	lBodyLen := len(ldata) - hashTrailerLen
	for cut := 0; cut < len(ldata); cut++ {
		_, err := ReadL2Trace(bytes.NewReader(ldata[:cut]))
		if cut == lBodyLen {
			if err != nil {
				t.Fatalf("legacy l2 body-only prefix rejected: %v", err)
			}
			continue
		}
		if err == nil {
			t.Fatalf("l2 prefix of %d/%d bytes decoded without error", cut, len(ldata))
		} else if !errors.Is(err, ErrBadFormat) {
			t.Fatalf("l2 prefix of %d bytes: error %v not tagged ErrBadFormat", cut, err)
		}
	}
}

// TestTraceWireCorruption: single-byte corruptions never panic; the
// ones that strike structure (magic, version, table headers) are
// rejected with errors.
func TestTraceWireCorruption(t *testing.T) {
	rec := NewRecorder()
	rec.PhaseBegin("Vop")
	randomStream(rand.New(rand.NewSource(5)), 500, rec, nil)
	rec.PhaseEnd("Vop")
	data := encodeTrace(t, rec.Finish())
	for pos := 0; pos < len(data); pos++ {
		for _, flip := range []byte{0x01, 0x80, 0xFF} {
			mut := bytes.Clone(data)
			mut[pos] ^= flip
			// Must not panic; errors are expected and fine, and a
			// successfully decoded mutation must still be replayable.
			dec, err := ReadTrace(bytes.NewReader(mut))
			if err == nil && dec.Records() < 0 {
				t.Fatal("unreachable")
			}
		}
	}
	// Targeted structural corruptions must be errors.
	for name, mut := range map[string][]byte{
		"bad magic":   append([]byte("XXXX"), data[4:]...),
		"bad version": append(bytes.Clone(data[:4]), append([]byte{0x7F}, data[5:]...)...),
		"empty input": {},
	} {
		if _, err := ReadTrace(bytes.NewReader(mut)); !errors.Is(err, ErrBadFormat) {
			t.Fatalf("%s: got %v, want ErrBadFormat", name, err)
		}
	}
}

// TestTraceWireRejectsCrossFormat: the two container types refuse each
// other's files.
func TestTraceWireRejectsCrossFormat(t *testing.T) {
	tdata := encodeTrace(t, NewRecorder().Finish())
	ldata := encodeL2Trace(t, NewL2Filter(l1Config()).Trace())
	if _, err := ReadTrace(bytes.NewReader(ldata)); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("ReadTrace accepted an l2trace file: %v", err)
	}
	if _, err := ReadL2Trace(bytes.NewReader(tdata)); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("ReadL2Trace accepted a trace file: %v", err)
	}
}

// TestTraceWirePhaseIndexValidation: an out-of-range phase-name index
// is a decode error, not a latent replay panic.
func TestTraceWirePhaseIndexValidation(t *testing.T) {
	rec := NewRecorder()
	rec.PhaseBegin("only")
	rec.PhaseEnd("only")
	data := encodeTrace(t, rec.Finish())
	// The last body byte (just before the hash trailer) is PhaseEnd's
	// name index 0 as its final varint; bump it out of range.
	mut := bytes.Clone(data)
	mut[len(mut)-1-hashTrailerLen] = 0x07
	if _, err := ReadTrace(bytes.NewReader(mut)); err == nil {
		t.Fatal("out-of-range phase index decoded without error")
	} else if !strings.Contains(err.Error(), "phase index") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestL2TraceWireGeometryValidation: an L2 trace claiming an invalid L1
// geometry is rejected at decode time.
func TestL2TraceWireGeometryValidation(t *testing.T) {
	f := NewL2Filter(l1Config())
	f.Run(0, 64, 1, 0)
	data := encodeL2Trace(t, f.Trace())
	// Magic(4) + version(1) + name len(1) + "L1D"(3), then size varint.
	// Zeroing the size field invalidates the geometry.
	mut := bytes.Clone(data)
	sizeOff := 4 + 1 + 1 + len("L1D")
	// 32768 encodes as a 3-byte varint; replace with a 1-byte zero and
	// drop the remainder of the varint.
	mut = append(mut[:sizeOff], append([]byte{0x00}, mut[sizeOff+3:]...)...)
	if _, err := ReadL2Trace(bytes.NewReader(mut)); err == nil {
		t.Fatal("invalid L1 geometry decoded without error")
	} else if !errors.Is(err, ErrBadFormat) {
		t.Fatalf("error %v not tagged ErrBadFormat", err)
	}
}

// TestL2TraceWirePolicyRoundTrip: the version-2 header carries the
// L1's replacement policy and seed, and a decoded trace replays
// identically under policy-configured L2 geometries.
func TestL2TraceWirePolicyRoundTrip(t *testing.T) {
	l1 := l1Config()
	l1.Policy = cache.PolicyPLRU
	f := NewL2Filter(l1)
	randomStream(rand.New(rand.NewSource(9)), 4000, f, f)
	orig := f.Trace()

	dec, err := ReadL2Trace(bytes.NewReader(encodeL2Trace(t, orig)))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if dec.L1 != orig.L1 {
		t.Fatalf("L1 config %+v != %+v (policy lost on the wire?)", dec.L1, orig.L1)
	}
	for _, pol := range []cache.Policy{cache.PolicyLRU, cache.PolicyRandom, cache.PolicyFIFO} {
		l2 := l2Config(512 << 10)
		l2.Policy = pol
		l2.Seed = 99
		wantWhole, _ := orig.Replay(l2)
		gotWhole, _ := dec.Replay(l2)
		if gotWhole != wantWhole {
			t.Fatalf("policy %s: decoded replay differs\nwant %+v\ngot  %+v", pol, wantWhole, gotWhole)
		}
	}
}

// TestL2TraceWireReadsVersion1: a pre-policy (version 1) file still
// decodes, with the LRU defaults its writer simulated under.
func TestL2TraceWireReadsVersion1(t *testing.T) {
	f := NewL2Filter(l1Config())
	randomStream(rand.New(rand.NewSource(4)), 1000, f, f)
	orig := f.Trace()
	data := encodeL2Trace(t, orig)

	// Downgrade the file: magic(4) + version(1) + "L1D" name(1+3) +
	// size(3-byte varint for 32768) + line(1) + ways(1) puts the v2
	// policy-length and seed bytes (both zero for the default config)
	// at offset 14; drop them and stamp version 1. Version-1 writers
	// predate the hash trailer too, so strip it — the edited body
	// would (correctly) no longer match the recorded digest.
	const polOff = 4 + 1 + 1 + 3 + 3 + 1 + 1
	if data[polOff] != 0 || data[polOff+1] != 0 {
		t.Fatalf("expected empty policy+seed bytes at offset %d, got %#x %#x",
			polOff, data[polOff], data[polOff+1])
	}
	v1 := append(bytes.Clone(data[:polOff]), data[polOff+2:len(data)-hashTrailerLen]...)
	v1[4] = 1

	dec, err := ReadL2Trace(bytes.NewReader(v1))
	if err != nil {
		t.Fatalf("decode version 1: %v", err)
	}
	if dec.L1 != orig.L1 {
		t.Fatalf("v1 L1 config %+v != %+v", dec.L1, orig.L1)
	}
	wantWhole, _ := orig.Replay(l2Config(1 << 20))
	gotWhole, _ := dec.Replay(l2Config(1 << 20))
	if gotWhole != wantWhole {
		t.Fatalf("v1 replay differs\nwant %+v\ngot  %+v", wantWhole, gotWhole)
	}
}

// TestL2TraceWireRejectsUnknownPolicy: a file naming a policy this
// reader does not implement is a decode error, not a misinterpreted
// simulation.
func TestL2TraceWireRejectsUnknownPolicy(t *testing.T) {
	bad := l1Config()
	bad.Policy = "mru"
	lt := &L2Trace{L1: bad}
	if _, err := ReadL2Trace(bytes.NewReader(encodeL2Trace(t, lt))); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("unknown policy decoded without error: %v", err)
	}
}

// TestTraceWireAddressBound: addresses beyond the decode bound are
// rejected — replay walks cache lines address-upward, so a crafted
// top-of-address-space record would otherwise wrap the loop counter
// and hang whatever process replays the trace (a dist worker, e.g.).
func TestTraceWireAddressBound(t *testing.T) {
	rec := NewRecorder()
	rec.Access(^uint64(0)-64, 64, 0)
	data := encodeTrace(t, rec.Finish())
	if _, err := ReadTrace(bytes.NewReader(data)); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("huge access address decoded without error: %v", err)
	}

	rec = NewRecorder()
	rec.RunStrided(^uint64(0)-1024, 64, 128, 4, 1, 0)
	data = encodeTrace(t, rec.Finish())
	if _, err := ReadTrace(bytes.NewReader(data)); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("huge run address decoded without error: %v", err)
	}

	hugeAddr := ^uint64(0) >> 1 // 2^63-1, above the 2^56 decode bound
	lt := &L2Trace{L1: l1Config(), events: []uint64{hugeAddr << 1}}
	ldata := encodeL2Trace(t, lt)
	if _, err := ReadL2Trace(bytes.NewReader(ldata)); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("huge l2 event address decoded without error: %v", err)
	}
}

// TestTraceWireCompactness: the varint-delta encoding should beat the
// in-memory footprint by a wide margin on real-shaped streams.
func TestTraceWireCompactness(t *testing.T) {
	rec := NewRecorder()
	randomStream(rand.New(rand.NewSource(11)), 20000, rec, rec)
	tr := rec.Finish()
	data := encodeTrace(t, tr)
	if len(data) >= tr.SizeBytes() {
		t.Fatalf("wire size %d not smaller than in-memory %d", len(data), tr.SizeBytes())
	}
}

// TestTraceReadFromResetsReceiver: ReadFrom replaces prior contents and
// clears the receiver on failure.
func TestTraceReadFromResetsReceiver(t *testing.T) {
	rec := NewRecorder()
	rec.Run(0, 64, 1, 0)
	data := encodeTrace(t, rec.Finish())

	var tr Trace
	if _, err := tr.ReadFrom(bytes.NewReader(data)); err != nil {
		t.Fatal(err)
	}
	if tr.Records() != 1 {
		t.Fatalf("records = %d, want 1", tr.Records())
	}
	if _, err := tr.ReadFrom(bytes.NewReader(data[:len(data)-1])); err == nil {
		t.Fatal("truncated decode succeeded")
	}
	if tr.Records() != 0 {
		t.Fatalf("failed ReadFrom left %d records in receiver", tr.Records())
	}
}
