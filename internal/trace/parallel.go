// Parallel replay: one long trace replayed across all cores,
// byte-identically to the serial loop.
//
// The event stream splits into fixed chunks. Each chunk replays
// speculatively from an unknown starting cache state: lines touched
// earlier in the chunk are exact ("known"), and under LRU every known
// line is more recent than every line surviving from before the chunk,
// so hits on known lines and — once a set's known count reaches the
// associativity — misses too are decided locally. Accesses the chunk
// cannot decide (the line may or may not have been resident at chunk
// entry) are logged as unknowns; evictions whose victim's dirty bit
// depends on an unknown are logged as deferred writebacks. A cheap
// sequential reconciliation pass then threads the true end-state of
// chunk k into chunk k+1 and resolves only the logged accesses against
// the residual lines each set carried across the boundary.
//
// The speculation relies on LRU's recency ordering; plru and fifo
// break the known-above-residual invariant (hits do not refresh age),
// random consumes a single seeded stream whose consumption order is
// global, and victim couples all sets through one buffer — those
// policies fall back to the serial loop, which remains byte-identical
// by definition.
package trace

import (
	"math/bits"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/obs"
)

// Parallel-replay metrics: the worker gauge mirrors SetReplayWorkers,
// the histograms time the two phases of each parallel replay, and the
// counters split replays between the parallel path and the serial
// fallback (policy or trace too small).
var (
	mReplayWorkers      = obs.Default().Gauge("trace_replay_workers")
	mParallelReplays    = obs.Default().Counter("trace_replay_parallel_total")
	mFallbackReplays    = obs.Default().Counter("trace_replay_fallback_total")
	mChunkSeconds       = obs.Default().Histogram("trace_replay_chunk_seconds", nil)
	mReconcileSeconds   = obs.Default().Histogram("trace_replay_reconcile_seconds", nil)
	mFusedReplays       = obs.Default().Counter("trace_replay_fused_total")
	mFusedReplayConfigs = obs.Default().Counter("trace_replay_fused_configs_total")
)

// replayWorkers holds the configured worker count; 0 means GOMAXPROCS.
var replayWorkers atomic.Int32

// chunkEventsOverride forces the parallel chunk size; the
// chunk-boundary property tests sweep it. 0 means the geometry-derived
// default.
var chunkEventsOverride atomic.Int32

func init() { mReplayWorkers.Set(int64(runtime.GOMAXPROCS(0))) }

// SetReplayWorkers configures the process-default parallelism of
// single-trace replays (the -replay-workers flag). n <= 0 restores the
// default, GOMAXPROCS. 1 disables the parallel path entirely.
func SetReplayWorkers(n int) {
	if n < 0 {
		n = 0
	}
	replayWorkers.Store(int32(n))
	mReplayWorkers.Set(int64(ReplayWorkers()))
}

// ReplayWorkers returns the effective replay worker count.
func ReplayWorkers() int {
	if n := int(replayWorkers.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// policyParallelOK reports whether the chunk-speculative replay is
// exact for a replacement policy (see the package comment on why only
// LRU converges).
func policyParallelOK(p cache.Policy) bool {
	return p == "" || p == cache.PolicyLRU
}

// maxParallelWays bounds the per-set scratch the reconcile pass keeps
// on the stack; geometries beyond it (never the paper's) fall back.
const maxParallelWays = 64

// l2Geom is the unpacked geometry the speculative engine indexes by.
type l2Geom struct {
	lineShift uint
	setMask   uint64
	sets      int
	ways      int
	lines     int
}

func geomOf(cfg cache.Config) l2Geom {
	lines := cfg.SizeBytes / cfg.LineBytes
	sets := lines / cfg.Ways
	return l2Geom{
		lineShift: uint(bits.TrailingZeros(uint(cfg.LineBytes))),
		setMask:   uint64(sets - 1),
		sets:      sets,
		ways:      cfg.Ways,
		lines:     lines,
	}
}

// l2ChunkMark snapshots the speculative counters at one phase marker:
// the definite miss/writeback counts so far plus how many unknown and
// deferred log entries precede the marker (the reconcile pass turns
// those prefixes into exact counters).
type l2ChunkMark struct {
	gidx    int32 // index into L2Trace.marks
	nUnk    uint32
	nDef    uint32
	missDef uint64
	wbDef   uint64
}

// l2ChunkRes is the speculative result of one event chunk.
type l2ChunkRes struct {
	missDef  uint64
	wbDef    uint64
	unknown  []uint64 // event words whose hit/miss depends on pre-chunk state, in order
	deferred []int32  // unknown-log indices whose resolved dirty bit decides a writeback
	marks    []l2ChunkMark
	touched  []uint32 // sets touched, in first-touch order
	kcnt     []uint16 // per touched set: known-line count at chunk end
	ktags    []uint64 // flattened known tags (MRU first)
	kdirty   []int32  // flattened dirty codes: 0 clean, 1 dirty, i+2 = depends on unknown i
}

// l2Spec is one worker's reusable speculative state.
type l2Spec struct {
	tags  []uint64
	dirty []int32
	kc    []uint16
	epoch []uint32
	cur   uint32
}

func newL2Spec(g l2Geom) *l2Spec {
	return &l2Spec{
		tags:  make([]uint64, g.lines),
		dirty: make([]int32, g.lines),
		kc:    make([]uint16, g.sets),
		epoch: make([]uint32, g.sets),
	}
}

// specChunk replays events [lo, hi) from an unknown starting state,
// logging what it cannot decide. marks are the t.marks indices whose
// pos lies in [lo, hi) — plus, for the final chunk, pos == hi.
func (t *L2Trace) specChunk(g l2Geom, sp *l2Spec, lo, hi, mi, miEnd int, last bool) *l2ChunkRes {
	res := &l2ChunkRes{}
	sp.cur++
	ways := g.ways
	for pos := lo; pos < hi; pos++ {
		for mi < miEnd && t.marks[mi].pos == pos {
			res.snapMark(t, mi)
			mi++
		}
		ev := t.events[pos]
		ln := (ev >> 1) >> g.lineShift
		s := uint32(ln & g.setMask)
		if sp.epoch[s] != sp.cur {
			sp.epoch[s] = sp.cur
			sp.kc[s] = 0
			res.touched = append(res.touched, s)
		}
		base := int(s) * ways
		k := int(sp.kc[s])
		write := ev&1 != 0
		hit := false
		for w := 0; w < k; w++ {
			if sp.tags[base+w] == ln {
				d := sp.dirty[base+w]
				for j := w; j > 0; j-- {
					sp.tags[base+j] = sp.tags[base+j-1]
					sp.dirty[base+j] = sp.dirty[base+j-1]
				}
				sp.tags[base] = ln
				if write {
					d = 1
				}
				sp.dirty[base] = d
				hit = true
				break
			}
		}
		if hit {
			continue
		}
		if k < ways {
			// Unknown: the line may have survived from before the chunk.
			d := int32(len(res.unknown)) + 2
			if write {
				d = 1
			}
			for j := k; j > 0; j-- {
				sp.tags[base+j] = sp.tags[base+j-1]
				sp.dirty[base+j] = sp.dirty[base+j-1]
			}
			sp.tags[base] = ln
			sp.dirty[base] = d
			sp.kc[s] = uint16(k + 1)
			res.unknown = append(res.unknown, ev)
			continue
		}
		// Converged set: a definite miss with a known victim.
		vd := sp.dirty[base+ways-1]
		if vd == 1 {
			res.wbDef++
		} else if vd >= 2 {
			res.deferred = append(res.deferred, vd-2)
		}
		if !write {
			res.missDef++
		}
		for j := ways - 1; j > 0; j-- {
			sp.tags[base+j] = sp.tags[base+j-1]
			sp.dirty[base+j] = sp.dirty[base+j-1]
		}
		sp.tags[base] = ln
		if write {
			sp.dirty[base] = 1
		} else {
			sp.dirty[base] = 0
		}
	}
	if last {
		for mi < miEnd {
			res.snapMark(t, mi)
			mi++
		}
	}
	// Export the speculative end state of every touched set.
	for _, s := range res.touched {
		base := int(s) * ways
		k := int(sp.kc[s])
		res.kcnt = append(res.kcnt, uint16(k))
		res.ktags = append(res.ktags, sp.tags[base:base+k]...)
		res.kdirty = append(res.kdirty, sp.dirty[base:base+k]...)
	}
	return res
}

func (res *l2ChunkRes) snapMark(t *L2Trace, mi int) {
	res.marks = append(res.marks, l2ChunkMark{
		gidx:    int32(mi),
		nUnk:    uint32(len(res.unknown)),
		nDef:    uint32(len(res.deferred)),
		missDef: res.missDef,
		wbDef:   res.wbDef,
	})
}

// ReplayParallel is Replay computed with up to `workers` cores:
// byte-identical whole-run and per-phase Stats for every geometry and
// policy. Non-LRU policies, workers <= 1 and short traces take the
// serial path.
func (t *L2Trace) ReplayParallel(l2 cache.Config, workers int) (cache.Stats, map[string]cache.Stats) {
	g := geomOf(l2)
	chunk := g.lines
	if chunk < 1<<15 {
		chunk = 1 << 15
	}
	if n := chunkEventsOverride.Load(); n > 0 {
		chunk = int(n)
	}
	if workers > len(t.events)/chunk {
		workers = len(t.events) / chunk
	}
	if !policyParallelOK(l2.Policy) || workers <= 1 || l2.Validate() != nil || g.ways > maxParallelWays {
		mFallbackReplays.Inc()
		return t.Replay(l2)
	}
	if obs.Enabled() {
		defer noteL2Replay(time.Now(), len(t.events))
	}
	mParallelReplays.Inc()

	nchunks := (len(t.events) + chunk - 1) / chunk
	results := make([]*l2ChunkRes, nchunks)
	markStart := make([]int, nchunks+1)
	for ci := 0; ci < nchunks; ci++ {
		lo := ci * chunk
		markStart[ci] = sort.Search(len(t.marks), func(i int) bool { return t.marks[i].pos >= lo })
	}
	markStart[nchunks] = len(t.marks)

	specStart := time.Now()
	var next atomic.Int32
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sp := newL2Spec(g)
			for {
				ci := int(next.Add(1)) - 1
				if ci >= nchunks {
					return
				}
				lo := ci * chunk
				hi := lo + chunk
				if hi > len(t.events) {
					hi = len(t.events)
				}
				results[ci] = t.specChunk(g, sp, lo, hi, markStart[ci], markStart[ci+1], ci == nchunks-1)
			}
		}()
	}
	wg.Wait()
	if obs.Enabled() {
		mChunkSeconds.Observe(time.Since(specStart).Seconds())
	}

	reconStart := time.Now()
	whole, phases := t.reconcile(g, results)
	if obs.Enabled() {
		mReconcileSeconds.Observe(time.Since(reconStart).Seconds())
	}
	return whole, phases
}

// reconcile threads the true cache state through the chunk results in
// order, resolving the unknown and deferred logs into exact counters
// and phase deltas.
func (t *L2Trace) reconcile(g l2Geom, results []*l2ChunkRes) (cache.Stats, map[string]cache.Stats) {
	ways := g.ways
	tags := make([]uint64, g.lines)
	dirty := make([]bool, g.lines)
	cnt := make([]uint16, g.sets) // residual lines per set
	uk := make([]uint32, g.sets)  // unknowns so far per set, this chunk
	ukEpoch := make([]uint32, g.sets)
	var epoch uint32

	var missBase, wbBase uint64 // totals over completed resolutions
	var depResolved []bool
	starts := map[string]cache.Stats{}
	var phases map[string]cache.Stats

	for _, res := range results {
		epoch++
		if cap(depResolved) < len(res.unknown) {
			depResolved = make([]bool, len(res.unknown))
		}
		depResolved = depResolved[:len(res.unknown)]
		var rMiss, rWB uint64 // resolved counters within this chunk
		u, dp := 0, 0

		resolveUnknown := func(i int) {
			ev := res.unknown[i]
			ln := (ev >> 1) >> g.lineShift
			s := ln & g.setMask
			if ukEpoch[s] != epoch {
				ukEpoch[s] = epoch
				uk[s] = 0
			}
			base := int(s) * ways
			r := int(cnt[s])
			write := ev&1 != 0
			found := -1
			for j := 0; j < r; j++ {
				if tags[base+j] == ln {
					found = j
					break
				}
			}
			if found >= 0 {
				depResolved[i] = dirty[base+found]
				copy(tags[base+found:base+r-1], tags[base+found+1:base+r])
				copy(dirty[base+found:base+r-1], dirty[base+found+1:base+r])
				cnt[s] = uint16(r - 1)
			} else {
				depResolved[i] = false
				if !write {
					rMiss++
				}
				if int(uk[s])+r >= ways && r > 0 {
					if dirty[base+r-1] {
						rWB++
					}
					cnt[s] = uint16(r - 1)
				}
			}
			uk[s]++
		}

		for _, m := range res.marks {
			for u < int(m.nUnk) {
				resolveUnknown(u)
				u++
			}
			for dp < int(m.nDef) {
				if depResolved[res.deferred[dp]] {
					rWB++
				}
				dp++
			}
			gm := &t.marks[m.gidx]
			at := gm.base
			at.L2Accesses = uint64(gm.pos)
			at.L2Misses = missBase + m.missDef + rMiss
			at.L2Writebacks = wbBase + m.wbDef + rWB
			applyMarkStats(t.names[gm.name], gm.begin, at, starts, &phases)
		}
		for u < len(res.unknown) {
			resolveUnknown(u)
			u++
		}
		for dp < len(res.deferred) {
			if depResolved[res.deferred[dp]] {
				rWB++
			}
			dp++
		}
		missBase += res.missDef + rMiss
		wbBase += res.wbDef + rWB

		// Thread the true end state: the chunk's known lines (dirty deps
		// resolved) stack above whatever residual each set still holds.
		off := 0
		var tmpT [maxParallelWays]uint64
		var tmpD [maxParallelWays]bool
		for ti, s := range res.touched {
			k := int(res.kcnt[ti])
			base := int(s) * ways
			rem := int(cnt[s])
			copy(tmpT[:rem], tags[base:base+rem])
			copy(tmpD[:rem], dirty[base:base+rem])
			for j := 0; j < k; j++ {
				code := res.kdirty[off+j]
				tags[base+j] = res.ktags[off+j]
				dirty[base+j] = code == 1 || (code >= 2 && depResolved[code-2])
			}
			copy(tags[base+k:base+k+rem], tmpT[:rem])
			copy(dirty[base+k:base+k+rem], tmpD[:rem])
			cnt[s] = uint16(k + rem)
			off += k
		}
	}

	whole := t.base
	whole.L2Accesses = uint64(len(t.events))
	whole.L2Misses = missBase
	whole.L2Writebacks = wbBase
	return whole, phases
}

// L2ReplayResult is one config's output from a fused multi-config
// replay.
type L2ReplayResult struct {
	Whole  cache.Stats
	Phases map[string]cache.Stats
}

// fusedBlockEvents is the event window the fused pass holds hot in the
// host cache while every config replays it.
const fusedBlockEvents = 1 << 15

// ReplayMany replays the stream against several L2 configs in one pass
// over the events: each block of the stream is replayed by every
// config while it is hot in the host cache, instead of streaming the
// whole trace once per config. With workers > 1 the configs split
// across goroutines (each group still fused). Every result is
// byte-identical to a standalone Replay of that config.
func (t *L2Trace) ReplayMany(cfgs []cache.Config, workers int) []L2ReplayResult {
	out := make([]L2ReplayResult, len(cfgs))
	if len(cfgs) == 0 {
		return out
	}
	if obs.Enabled() {
		start := time.Now()
		defer func() {
			mL2ReplaySeconds.Observe(time.Since(start).Seconds())
		}()
	}
	mFusedReplays.Inc()
	mFusedReplayConfigs.Add(uint64(len(cfgs)))
	mL2Replays.Add(uint64(len(cfgs)))
	mL2ReplayEvents.Add(uint64(len(cfgs) * len(t.events)))
	if workers > len(cfgs) {
		workers = len(cfgs)
	}
	if workers <= 1 {
		t.replayFused(cfgs, out)
		return out
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * len(cfgs) / workers
		hi := (w + 1) * len(cfgs) / workers
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			t.replayFused(cfgs[lo:hi], out[lo:hi])
		}(lo, hi)
	}
	wg.Wait()
	return out
}

// replayFused advances one l2Replay per config across each event block
// in turn, reusing the per-config scratch for every block.
func (t *L2Trace) replayFused(cfgs []cache.Config, out []L2ReplayResult) {
	states := make([]l2Replay, len(cfgs))
	for i := range states {
		states[i].reset(t, cfgs[i])
	}
	for lo := 0; lo < len(t.events); lo += fusedBlockEvents {
		hi := lo + fusedBlockEvents
		if hi > len(t.events) {
			hi = len(t.events)
		}
		for i := range states {
			states[i].run(lo, hi)
		}
	}
	for i := range states {
		whole, phases := states[i].finish()
		out[i] = L2ReplayResult{Whole: whole, Phases: phases}
	}
}
