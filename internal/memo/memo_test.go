package memo

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/cache"
)

func testKey(i int) Key {
	return Key{
		TraceHash: fmt.Sprintf("%064d", i),
		L1:        cache.Config{SizeBytes: 32 << 10, LineBytes: 32, Ways: 2},
		L2:        cache.Config{SizeBytes: 1 << 20, LineBytes: 128, Ways: 2},
	}
}

func testStats(i int) cache.Stats {
	return cache.Stats{Loads: uint64(i) + 1, L2Misses: uint64(i) * 7}
}

// TestMemoRoundTrip: put → get returns the exact stats; a get of an
// absent key misses; counters account both.
func TestMemoRoundTrip(t *testing.T) {
	m, err := New(Config{Version: "v1"})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Get(testKey(1)); ok {
		t.Fatal("empty cache served a hit")
	}
	m.Put(testKey(1), testStats(1))
	st, ok := m.Get(testKey(1))
	if !ok || st != testStats(1) {
		t.Fatalf("get = %+v, %v", st, ok)
	}
	if c := m.Counters(); c.Hits != 1 || c.Misses != 1 || c.Evictions != 0 {
		t.Fatalf("counters = %+v", c)
	}
}

// TestMemoKeyCanonicalization: the "" and "lru" policy spellings, and
// display names, name the same cell.
func TestMemoKeyCanonicalization(t *testing.T) {
	m, err := New(Config{Version: "v1"})
	if err != nil {
		t.Fatal(err)
	}
	k := testKey(1)
	k.L1.Policy = ""
	k.L1.Name = "dcache"
	m.Put(k, testStats(1))

	k2 := testKey(1)
	k2.L1.Policy = cache.PolicyLRU
	k2.L1.Name = "other"
	if _, ok := m.Get(k2); !ok {
		t.Fatal("canonically equal key missed")
	}
	k3 := testKey(1)
	k3.L1.Policy = cache.PolicyFIFO
	if _, ok := m.Get(k3); ok {
		t.Fatal("different policy hit the lru entry")
	}
}

// TestMemoEvictionLRU: the in-memory tier is bounded and a Get
// refreshes recency, so the least-recently-used entry is the victim.
func TestMemoEvictionLRU(t *testing.T) {
	m, err := New(Config{Version: "v1", MaxEntries: 2})
	if err != nil {
		t.Fatal(err)
	}
	m.Put(testKey(1), testStats(1))
	m.Put(testKey(2), testStats(2))
	if _, ok := m.Get(testKey(1)); !ok { // promote 1; 2 becomes LRU
		t.Fatal("lost entry 1")
	}
	m.Put(testKey(3), testStats(3))
	if _, ok := m.Get(testKey(2)); ok {
		t.Fatal("entry 2 should have been the LRU victim")
	}
	if _, ok := m.Get(testKey(1)); !ok {
		t.Fatal("promoted entry 1 was evicted")
	}
	if _, ok := m.Get(testKey(3)); !ok {
		t.Fatal("fresh entry 3 was evicted")
	}
	if c := m.Counters(); c.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", c.Evictions)
	}
	if m.Len() != 2 {
		t.Fatalf("len = %d, want 2", m.Len())
	}
}

// TestMemoEvictionPolicyKnob: the eviction engine honors the
// configured policy — under FIFO a hit does not rescue the oldest
// entry — and rejects policies invalid for the geometry.
func TestMemoEvictionPolicyKnob(t *testing.T) {
	m, err := New(Config{Version: "v1", MaxEntries: 2, Policy: cache.PolicyFIFO})
	if err != nil {
		t.Fatal(err)
	}
	m.Put(testKey(1), testStats(1))
	m.Put(testKey(2), testStats(2))
	m.Get(testKey(1)) // would promote under LRU; FIFO ignores it
	m.Put(testKey(3), testStats(3))
	if _, ok := m.Get(testKey(1)); ok {
		t.Fatal("FIFO kept the oldest entry across a hit")
	}
	if _, ok := m.Get(testKey(2)); !ok {
		t.Fatal("FIFO evicted the wrong entry")
	}

	if _, err := New(Config{Version: "v1", MaxEntries: 100, Policy: cache.PolicyPLRU}); err == nil {
		t.Fatal("plru over non-power-of-two entries must be rejected")
	}
}

// TestMemoDiskPersistence: entries survive into a fresh cache over the
// same directory — the warm-start contract of mp4study -memo-dir.
func TestMemoDiskPersistence(t *testing.T) {
	dir := t.TempDir()
	m1, err := New(Config{Version: "v1", Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	m1.Put(testKey(1), testStats(1))

	m2, err := New(Config{Version: "v1", Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	st, ok := m2.Get(testKey(1))
	if !ok || st != testStats(1) {
		t.Fatalf("warm start lost the entry: %+v, %v", st, ok)
	}
	if c := m2.Counters(); c.Hits != 1 {
		t.Fatalf("disk promote not counted as hit: %+v", c)
	}
}

// TestMemoPoisoning: disk entries recorded under a different code
// version — or whose embedded key disagrees with their path — are
// ignored, never served. This is the guard against a simulator change
// silently replaying stale results.
func TestMemoPoisoning(t *testing.T) {
	dir := t.TempDir()
	old, err := New(Config{Version: "v1", Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	old.Put(testKey(1), testStats(1))

	cur, err := New(Config{Version: "v2", Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := cur.Get(testKey(1)); ok {
		t.Fatal("entry from another code version was served")
	}

	// A hand-poisoned file: right version, wrong embedded key.
	raw, _ := json.Marshal(diskEntry{Version: "v2", Key: testKey(9), Stats: testStats(9)})
	if err := os.WriteFile(filepath.Join(dir, testKey(2).fileName()), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := cur.Get(testKey(2)); ok {
		t.Fatal("entry whose key disagrees with its path was served")
	}

	// Torn/corrupt JSON is a miss, not an error.
	if err := os.WriteFile(filepath.Join(dir, testKey(3).fileName()), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := cur.Get(testKey(3)); ok {
		t.Fatal("corrupt entry was served")
	}

	// Recomputing overwrites the stale entry for the current version.
	cur.Put(testKey(1), testStats(5))
	fresh, err := New(Config{Version: "v2", Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if st, ok := fresh.Get(testKey(1)); !ok || st != testStats(5) {
		t.Fatalf("overwritten entry not served: %+v, %v", st, ok)
	}
}

// TestMemoNilSafe: a nil cache is a valid always-miss memo.
func TestMemoNilSafe(t *testing.T) {
	var m *Cache
	m.Put(testKey(1), testStats(1))
	if _, ok := m.Get(testKey(1)); ok {
		t.Fatal("nil cache hit")
	}
	if m.Len() != 0 || m.Counters() != (Counters{}) {
		t.Fatal("nil cache has state")
	}
}
