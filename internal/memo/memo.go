// Package memo is the experiment result cache that makes sweeps
// incremental: one simulated grid cell — a content-addressed trace
// replayed against one (L1, L2) geometry — is a pure function of its
// key, so its whole-run cache.Stats can be memoized and replayed
// sweeps can skip every cell they have seen before. The key is
// (trace content hash, canonical L1 config, canonical L2 config) plus
// the simulator code version baked into the cache, so a trace edit, a
// geometry change, a policy/seed change, or a simulator change each
// miss naturally instead of serving stale results.
//
// Values are raw cache.Stats, not derived metrics: perf.Compute is
// deterministic, so reconstructing a sweep point from memoized stats
// is byte-identical to simulating it. Correctness therefore never
// depends on the memo — it only removes work.
//
// The in-memory tier is bounded, with eviction delegated to a
// fully-associative cache.Cache (one line per entry): the same
// replacement policies the simulator sweeps — lru, plru, fifo, random
// — govern which memoized cells survive, and the policy is a Config
// knob. An optional directory tier persists every entry as one JSON
// file named by the key's hash, so warm starts survive process
// restarts; disk entries carry their version inside the file and are
// ignored (not deleted) on mismatch.
package memo

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/cache"
	"repro/internal/obs"
)

// Memo metrics: process-wide totals across every memo cache (studies,
// service, coordinator). Per-cache counts come from Counters().
var (
	mHits      = obs.Default().Counter("memo_hits_total")
	mMisses    = obs.Default().Counter("memo_misses_total")
	mEvictions = obs.Default().Counter("memo_evictions_total")
)

// Key identifies one memoizable grid cell. TraceHash is the hex
// content hash of the FULL capture (trace.Hash.String()) — the same
// identity the distributed trace store uses — so local and fleet
// sweeps share entries. L1 and L2 are the exact configurations the
// cell simulates; Get/Put canonicalize them (policy spelling, display
// name) so equal caches cannot miss on spelling.
type Key struct {
	TraceHash string       `json:"trace_hash"`
	L1        cache.Config `json:"l1"`
	L2        cache.Config `json:"l2"`
}

// normalize maps every spelling of the same cell to one map key: the
// policy's canonical form, and no display name (configs differing only
// in Name simulate identically).
func (k Key) normalize() Key {
	k.L1 = k.L1.Canonical()
	k.L1.Name = ""
	k.L2 = k.L2.Canonical()
	k.L2.Name = ""
	return k
}

// fileName is the key's disk identity: the SHA-256 of its canonical
// JSON. The version is deliberately NOT part of the name — an entry
// written by another code version sits at the same path and is
// rejected by content, which is what the poisoning tests pin.
func (k Key) fileName() string {
	raw, err := json.Marshal(k.normalize())
	if err != nil {
		panic(err) // Key is three plain structs; Marshal cannot fail
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:]) + ".json"
}

// Config parameterizes a Cache.
type Config struct {
	// Version names the simulator code the entries were produced by.
	// Disk entries recorded under any other version are ignored. Use
	// harness.CodeVersion unless testing the mechanism itself.
	Version string
	// MaxEntries bounds the in-memory tier. <= 0 means 4096.
	MaxEntries int
	// Policy selects the in-memory eviction policy (the same
	// replacement policies the simulator studies). "" means LRU.
	Policy cache.Policy
	// Seed parameterizes PolicyRandom's victim stream.
	Seed uint64
	// Dir, when non-empty, persists every entry as one JSON file and
	// serves in-memory misses from disk. Created if missing.
	Dir string
}

// Counters is one cache's accounting snapshot.
type Counters struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
}

// HitRate returns hits/(hits+misses), or 0 before any lookup.
func (c Counters) HitRate() float64 {
	if c.Hits+c.Misses == 0 {
		return 0
	}
	return float64(c.Hits) / float64(c.Hits+c.Misses)
}

// entryLine is the fake line size backing the eviction engine: each
// entry occupies one line at address seq<<entryShift, so engine line
// numbers map 1:1 to insertion sequence numbers.
const entryShift = 6

// Cache is the memo store. Safe for concurrent use. A nil *Cache is a
// valid always-miss cache, so callers can thread an optional memo
// without nil checks.
type Cache struct {
	cfg Config

	mu      sync.Mutex
	entries map[Key]cache.Stats
	addrOf  map[Key]uint64 // entry → its engine address
	keyAt   map[uint64]Key // engine line number → entry
	engine  *cache.Cache   // fully-associative; decides eviction order
	seq     uint64
	c       Counters
}

// New builds a memo cache. The eviction engine is a real cache.Cache
// (fully associative, one 64-byte line per entry), so Config.Policy is
// validated by the same rules as any simulated cache — e.g. plru needs
// a power-of-two MaxEntries of at most 64.
func New(cfg Config) (*Cache, error) {
	if cfg.MaxEntries <= 0 {
		cfg.MaxEntries = 4096
	}
	engine, err := cache.TryNew(cache.Config{
		Name:      "memo",
		SizeBytes: cfg.MaxEntries << entryShift,
		LineBytes: 1 << entryShift,
		Ways:      cfg.MaxEntries,
		Policy:    cfg.Policy,
		Seed:      cfg.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("memo: eviction engine: %w", err)
	}
	if cfg.Dir != "" {
		if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("memo: %w", err)
		}
	}
	return &Cache{
		cfg:     cfg,
		entries: map[Key]cache.Stats{},
		addrOf:  map[Key]uint64{},
		keyAt:   map[uint64]Key{},
		engine:  engine,
	}, nil
}

// Get returns the memoized stats for k. A hit refreshes the entry's
// recency; an in-memory miss with a directory configured consults disk
// and promotes a valid entry. Only entries recorded under the cache's
// exact code version are served.
func (c *Cache) Get(k Key) (cache.Stats, bool) {
	if c == nil {
		return cache.Stats{}, false
	}
	k = k.normalize()
	c.mu.Lock()
	if st, ok := c.entries[k]; ok {
		c.engine.Access(c.addrOf[k], false)
		c.c.Hits++
		c.mu.Unlock()
		mHits.Inc()
		return st, true
	}
	c.mu.Unlock()
	if st, ok := c.loadDisk(k); ok {
		c.insert(k, st)
		c.mu.Lock()
		c.c.Hits++
		c.mu.Unlock()
		mHits.Inc()
		return st, true
	}
	c.mu.Lock()
	c.c.Misses++
	c.mu.Unlock()
	mMisses.Inc()
	return cache.Stats{}, false
}

// Put memoizes stats for k in memory (possibly evicting) and, with a
// directory configured, on disk. Re-putting a key refreshes its value
// and recency. Disk write failures are ignored: the memo is an
// optimization, never a correctness dependency.
func (c *Cache) Put(k Key, st cache.Stats) {
	if c == nil {
		return
	}
	k = k.normalize()
	c.insert(k, st)
	if c.cfg.Dir != "" {
		c.storeDisk(k, st)
	}
}

// insert adds or refreshes one in-memory entry, delegating the victim
// choice to the eviction engine.
func (c *Cache) insert(k Key, st cache.Stats) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[k]; ok {
		c.entries[k] = st
		c.engine.Access(c.addrOf[k], false)
		return
	}
	addr := c.seq << entryShift
	c.seq++
	if res := c.engine.Access(addr, false); res.Evicted {
		victim := c.keyAt[res.EvictedLine]
		delete(c.entries, victim)
		delete(c.addrOf, victim)
		delete(c.keyAt, res.EvictedLine)
		c.c.Evictions++
		mEvictions.Inc()
	}
	c.entries[k] = st
	c.addrOf[k] = addr
	c.keyAt[addr>>entryShift] = k
}

// Len returns the in-memory entry count.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Counters returns this cache's accounting snapshot.
func (c *Cache) Counters() Counters {
	if c == nil {
		return Counters{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.c
}

// diskEntry is the persisted form. The version lives INSIDE the file,
// not in its name: a stale or poisoned entry is found and then
// rejected by content, never trusted because its path looked right.
type diskEntry struct {
	Version string      `json:"version"`
	Key     Key         `json:"key"`
	Stats   cache.Stats `json:"stats"`
}

// loadDisk serves an in-memory miss from the directory tier. Anything
// questionable — unreadable file, malformed JSON, version or key
// mismatch — is a miss; the simulator recomputes and overwrites.
func (c *Cache) loadDisk(k Key) (cache.Stats, bool) {
	if c.cfg.Dir == "" {
		return cache.Stats{}, false
	}
	raw, err := os.ReadFile(filepath.Join(c.cfg.Dir, k.fileName()))
	if err != nil {
		return cache.Stats{}, false
	}
	var e diskEntry
	if json.Unmarshal(raw, &e) != nil || e.Version != c.cfg.Version || e.Key.normalize() != k {
		return cache.Stats{}, false
	}
	return e.Stats, true
}

// storeDisk persists one entry atomically (temp file + rename), so a
// concurrent reader never sees a torn entry and a crash never leaves
// one behind as valid JSON.
func (c *Cache) storeDisk(k Key, st cache.Stats) {
	raw, err := json.Marshal(diskEntry{Version: c.cfg.Version, Key: k, Stats: st})
	if err != nil {
		return
	}
	f, err := os.CreateTemp(c.cfg.Dir, "put-*.tmp")
	if err != nil {
		return
	}
	tmp := f.Name()
	_, werr := f.Write(raw)
	if cerr := f.Close(); werr != nil || cerr != nil {
		os.Remove(tmp)
		return
	}
	if os.Rename(tmp, filepath.Join(c.cfg.Dir, k.fileName())) != nil {
		os.Remove(tmp)
	}
}
