// Package perf models the three SGI platforms of the paper and turns the
// raw cache-hierarchy event counters into the derived metrics the paper's
// tables report (miss rates, cache-line reuse, miss time, DRAM stall
// time, L1–L2 and L2–DRAM bandwidth, prefetch L1-hit ratio).
//
// The timing model is deliberately simple — the paper's machines are
// 4-issue out-of-order MIPS cores, and the paper itself notes that
// out-of-order issue and the compiler hide part of the miss latency. We
// model:
//
//	cycles = instructions/IPC + visibleL1Stalls + visibleDRAMStalls
//
// where the visible stall terms apply per-machine hiding (overlap)
// fractions to the raw penalty cycles. The absolute numbers are not
// expected to match the paper's hardware; the derived ratios and their
// trends are.
package perf

import (
	"fmt"

	"repro/internal/cache"
)

// Machine describes one experimental platform (paper Table 1).
type Machine struct {
	Name     string  // marketing name, e.g. "SGI O2"
	CPU      string  // "R12K" / "R10K"
	ClockMHz float64 // core clock

	L1 cache.Config
	L2 cache.Config

	// Timing parameters.
	IPC             float64 // sustained non-stalled instructions/cycle
	L2HitCycles     float64 // L1-miss, L2-hit penalty (raw)
	DRAMCycles      float64 // L2-miss penalty to DRAM (raw, load-to-use)
	L1VisibleFrac   float64 // fraction of L2-hit penalty not hidden by OOO
	DRAMVisibleFrac float64 // fraction of DRAM penalty not hidden

	// Bus (paper Table 1: 64-bit, 133 MHz, split transaction).
	BusPeakMBps      float64
	BusSustainedMBps float64

	// The R10000 cannot count prefetches that hit in L1 (paper: "n/a").
	HasPrefetchHitCounter bool
}

// Validate checks the machine description.
func (m Machine) Validate() error {
	if m.ClockMHz <= 0 || m.IPC <= 0 {
		return fmt.Errorf("machine %s: nonpositive clock or IPC", m.Name)
	}
	if err := m.L1.Validate(); err != nil {
		return err
	}
	if err := m.L2.Validate(); err != nil {
		return err
	}
	if m.L1VisibleFrac < 0 || m.L1VisibleFrac > 1 || m.DRAMVisibleFrac < 0 || m.DRAMVisibleFrac > 1 {
		return fmt.Errorf("machine %s: visible fractions out of [0,1]", m.Name)
	}
	return nil
}

// NewHierarchy builds the cache hierarchy for this machine.
func (m Machine) NewHierarchy() *cache.Hierarchy {
	return cache.NewHierarchy(m.L1, m.L2)
}

// Label returns the short column label used in the paper's tables,
// e.g. "R12K 1MB".
func (m Machine) Label() string {
	return fmt.Sprintf("%s %s", m.CPU, humanSize(m.L2.SizeBytes))
}

func humanSize(b int) string {
	switch {
	case b >= 1<<20 && b%(1<<20) == 0:
		return fmt.Sprintf("%dMB", b/(1<<20))
	case b >= 1<<10 && b%(1<<10) == 0:
		return fmt.Sprintf("%dKB", b/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}

// The three platforms of the paper (Table 1 and Section 3.1):
// an SGI O2 (R12000, 1 MB L2), an SGI Onyx VTX (R10000, 2 MB L2) and an
// SGI Onyx2 InfiniteReality (R12000, 8 MB L2). All share a 32 KB 2-way
// L1 data cache with 32-byte lines and 128-byte L2 lines, a 64-bit
// 133 MHz split-transaction system bus (1064 MB/s peak, 680 MB/s
// sustained) and 4-way interleaved SDRAM.

func baseMachine() Machine {
	return Machine{
		L1:          cache.Config{Name: "L1D", SizeBytes: 32 << 10, LineBytes: 32, Ways: 2},
		L2:          cache.Config{Name: "L2", SizeBytes: 1 << 20, LineBytes: 128, Ways: 2},
		IPC:         1.3,
		L2HitCycles: 10,
		// The raw SDRAM load-to-use is ~208 ns (Table 1), but the
		// visible end-to-end miss penalty on these systems (UMA on the
		// O2, ccNUMA on the Onyx2, plus TLB and row misses) is several
		// times that; the values below reproduce the paper's stall-time
		// band.
		DRAMCycles:       220,
		L1VisibleFrac:    0.45,
		DRAMVisibleFrac:  0.6,
		BusPeakMBps:      1064,
		BusSustainedMBps: 680,
	}
}

// O2R12K1MB returns the SGI O2 model (R12000 300 MHz, 1 MB L2).
func O2R12K1MB() Machine {
	m := baseMachine()
	m.Name = "SGI O2"
	m.CPU = "R12K"
	m.ClockMHz = 300
	m.L2.SizeBytes = 1 << 20
	m.HasPrefetchHitCounter = true
	return m
}

// OnyxR10K2MB returns the SGI Onyx VTX model (R10000 195 MHz, 2 MB L2).
func OnyxR10K2MB() Machine {
	m := baseMachine()
	m.Name = "SGI Onyx VTX"
	m.CPU = "R10K"
	m.ClockMHz = 195
	m.L2.SizeBytes = 2 << 20
	m.DRAMCycles = 145 // the same memory system at the lower clock
	m.HasPrefetchHitCounter = false
	return m
}

// Onyx2R12K8MB returns the SGI Onyx2 InfiniteReality model (R12000
// 300 MHz, 8 MB L2).
func Onyx2R12K8MB() Machine {
	m := baseMachine()
	m.Name = "SGI Onyx2 IR"
	m.CPU = "R12K"
	m.ClockMHz = 300
	m.L2.SizeBytes = 8 << 20
	m.HasPrefetchHitCounter = true
	return m
}

// PaperMachines returns the three platforms in the column order the
// paper's tables use: R12K/1MB, R10K/2MB, R12K/8MB.
func PaperMachines() []Machine {
	return []Machine{O2R12K1MB(), OnyxR10K2MB(), Onyx2R12K8MB()}
}

// Metrics is one table column of the paper: the derived metrics for one
// run (or one phase of a run) on one machine.
type Metrics struct {
	Machine Machine
	Raw     cache.Stats

	Cycles           float64 // total modelled cycles
	Seconds          float64 // wall time at the machine clock
	L1MissRate       float64 // L1 misses / (loads+stores)
	L1MissTimeFrac   float64 // visible L1→L2 stall cycles / cycles
	L1LineReuse      float64 // (refs - L1 misses) / L1 misses
	L2MissRate       float64 // L2 misses / L1 misses (local)
	L2LineReuse      float64 // (L1 misses - L2 misses) / L2 misses
	DRAMTimeFrac     float64 // visible DRAM stall cycles / cycles
	IssueTimeFrac    float64 // non-stall (fetch/issue-bound) cycles / cycles
	L1L2MBps         float64 // bytes moved L1<->L2 per second
	L2DRAMMBps       float64 // bytes moved L2<->DRAM per second
	BusUtilization   float64 // L2DRAMMBps / sustained bus bandwidth
	PrefetchL1Miss   float64 // prefetches missing L1 / prefetches (good if high)
	HasPrefetchStats bool
}

// Compute derives the paper's metrics from raw counters on machine m.
func Compute(m Machine, s cache.Stats) Metrics {
	refs := float64(s.References())
	l1m := float64(s.L1Misses)
	l2m := float64(s.L2Misses)

	instr := float64(s.Instructions())
	baseCycles := instr / m.IPC
	l1Stall := l1m * m.L2HitCycles * m.L1VisibleFrac
	dramStall := l2m * m.DRAMCycles * m.DRAMVisibleFrac
	cycles := baseCycles + l1Stall + dramStall
	if cycles <= 0 {
		cycles = 1
	}
	secs := cycles / (m.ClockMHz * 1e6)

	// Traffic: every L1 miss moves one L1 line up; every L1 writeback
	// moves one L1 line down. Same per L2 line at the L2-DRAM boundary.
	l1l2Bytes := (l1m + float64(s.L1Writebacks)) * float64(m.L1.LineBytes)
	l2dramBytes := (l2m + float64(s.L2Writebacks)) * float64(m.L2.LineBytes)

	mt := Metrics{
		Machine:          m,
		Raw:              s,
		Cycles:           cycles,
		Seconds:          secs,
		L1MissTimeFrac:   l1Stall / cycles,
		DRAMTimeFrac:     dramStall / cycles,
		IssueTimeFrac:    baseCycles / cycles,
		L1L2MBps:         l1l2Bytes / secs / 1e6,
		L2DRAMMBps:       l2dramBytes / secs / 1e6,
		HasPrefetchStats: m.HasPrefetchHitCounter,
	}
	if refs > 0 {
		mt.L1MissRate = l1m / refs
	}
	if l1m > 0 {
		mt.L1LineReuse = (refs - l1m) / l1m
		mt.L2MissRate = l2m / l1m
	}
	if l2m > 0 {
		mt.L2LineReuse = (l1m - l2m) / l2m
	}
	if m.BusSustainedMBps > 0 {
		mt.BusUtilization = mt.L2DRAMMBps / m.BusSustainedMBps
	}
	if m.HasPrefetchHitCounter && s.Prefetches > 0 {
		mt.PrefetchL1Miss = float64(s.Prefetches-s.PrefetchL1Hits) / float64(s.Prefetches)
	}
	return mt
}

// Breakdown summarises where modelled execution time goes — the
// paper's conclusion is that even without SIMD the bottleneck "is still
// the fetch/issue rate", i.e. IssueTimeFrac dominates.
func (mt Metrics) Breakdown() string {
	return fmt.Sprintf("issue %.1f%% | L1-miss stall %.1f%% | DRAM stall %.1f%%",
		mt.IssueTimeFrac*100, mt.L1MissTimeFrac*100, mt.DRAMTimeFrac*100)
}

// PrefetchL1MissString formats the prefetch statistic, honouring the
// R10K's missing counter ("n/a" in the paper's tables).
func (mt Metrics) PrefetchL1MissString() string {
	if !mt.HasPrefetchStats {
		return "n/a"
	}
	return fmt.Sprintf("%.1f%%", mt.PrefetchL1Miss*100)
}
