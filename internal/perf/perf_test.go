package perf

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/cache"
)

func TestPaperMachines(t *testing.T) {
	ms := PaperMachines()
	if len(ms) != 3 {
		t.Fatalf("want 3 machines, got %d", len(ms))
	}
	wantLabels := []string{"R12K 1MB", "R10K 2MB", "R12K 8MB"}
	for i, m := range ms {
		if err := m.Validate(); err != nil {
			t.Errorf("machine %s invalid: %v", m.Name, err)
		}
		if m.Label() != wantLabels[i] {
			t.Errorf("label %q want %q", m.Label(), wantLabels[i])
		}
		if m.L1.SizeBytes != 32<<10 || m.L1.LineBytes != 32 {
			t.Errorf("%s: L1 geometry wrong: %+v", m.Name, m.L1)
		}
		if m.L2.LineBytes != 128 {
			t.Errorf("%s: L2 line size wrong", m.Name)
		}
	}
	if ms[0].L2.SizeBytes != 1<<20 || ms[1].L2.SizeBytes != 2<<20 || ms[2].L2.SizeBytes != 8<<20 {
		t.Error("L2 sizes are not 1/2/8 MB")
	}
	if ms[1].HasPrefetchHitCounter {
		t.Error("R10K must not have a prefetch-hit counter (paper: n/a)")
	}
	if !ms[0].HasPrefetchHitCounter || !ms[2].HasPrefetchHitCounter {
		t.Error("R12K machines must have the prefetch-hit counter")
	}
}

func TestMachineValidateRejectsBad(t *testing.T) {
	m := O2R12K1MB()
	m.ClockMHz = 0
	if m.Validate() == nil {
		t.Error("zero clock accepted")
	}
	m = O2R12K1MB()
	m.L1VisibleFrac = 1.5
	if m.Validate() == nil {
		t.Error("visible fraction > 1 accepted")
	}
	m = O2R12K1MB()
	m.L2.LineBytes = 100
	if m.Validate() == nil {
		t.Error("non-pow2 line accepted")
	}
}

func TestComputeBasicRatios(t *testing.T) {
	m := Onyx2R12K8MB()
	s := cache.Stats{
		Loads: 900_000, Stores: 100_000, Ops: 2_000_000,
		L1Misses: 1000, L1Writebacks: 300,
		L2Misses: 100, L2Writebacks: 30,
		Prefetches: 1000, PrefetchL1Hits: 550,
	}
	mt := Compute(m, s)
	if math.Abs(mt.L1MissRate-0.001) > 1e-9 {
		t.Errorf("L1MissRate=%v want 0.001", mt.L1MissRate)
	}
	if math.Abs(mt.L1LineReuse-999) > 1e-6 {
		t.Errorf("L1LineReuse=%v want 999", mt.L1LineReuse)
	}
	if math.Abs(mt.L2MissRate-0.1) > 1e-9 {
		t.Errorf("L2MissRate=%v want 0.1", mt.L2MissRate)
	}
	if math.Abs(mt.L2LineReuse-9) > 1e-9 {
		t.Errorf("L2LineReuse=%v want 9", mt.L2LineReuse)
	}
	if math.Abs(mt.PrefetchL1Miss-0.45) > 1e-9 {
		t.Errorf("PrefetchL1Miss=%v want 0.45", mt.PrefetchL1Miss)
	}
	if mt.Cycles <= 0 || mt.Seconds <= 0 {
		t.Error("nonpositive time")
	}
	// Traffic: (1000+300)*32 bytes over the run.
	wantL1L2 := 1300.0 * 32 / mt.Seconds / 1e6
	if math.Abs(mt.L1L2MBps-wantL1L2) > 1e-6 {
		t.Errorf("L1L2MBps=%v want %v", mt.L1L2MBps, wantL1L2)
	}
	wantL2D := 130.0 * 128 / mt.Seconds / 1e6
	if math.Abs(mt.L2DRAMMBps-wantL2D) > 1e-6 {
		t.Errorf("L2DRAMMBps=%v want %v", mt.L2DRAMMBps, wantL2D)
	}
}

func TestComputeZeroSafe(t *testing.T) {
	mt := Compute(O2R12K1MB(), cache.Stats{})
	for name, v := range map[string]float64{
		"L1MissRate": mt.L1MissRate, "L2MissRate": mt.L2MissRate,
		"L1LineReuse": mt.L1LineReuse, "L2LineReuse": mt.L2LineReuse,
		"DRAMTimeFrac": mt.DRAMTimeFrac, "L1L2MBps": mt.L1L2MBps,
	} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("%s is %v on zero stats", name, v)
		}
	}
}

func TestPrefetchNA(t *testing.T) {
	mt := Compute(OnyxR10K2MB(), cache.Stats{Prefetches: 10, PrefetchL1Hits: 5})
	if mt.PrefetchL1MissString() != "n/a" {
		t.Errorf("R10K prefetch string = %q want n/a", mt.PrefetchL1MissString())
	}
	mt2 := Compute(O2R12K1MB(), cache.Stats{Prefetches: 10, PrefetchL1Hits: 5, Loads: 1})
	if mt2.PrefetchL1MissString() != "50.0%" {
		t.Errorf("R12K prefetch string = %q want 50.0%%", mt2.PrefetchL1MissString())
	}
}

func TestQuickTimeFractionsBounded(t *testing.T) {
	f := func(loads, stores, l1m, l2m uint32, ops uint32) bool {
		s := cache.Stats{
			Loads: uint64(loads), Stores: uint64(stores), Ops: uint64(ops),
		}
		// Enforce counter consistency: misses <= refs, l2m <= l1m.
		refs := s.References()
		s.L1Misses = uint64(l1m) % (refs + 1)
		s.L2Misses = uint64(l2m) % (s.L1Misses + 1)
		for _, m := range PaperMachines() {
			mt := Compute(m, s)
			if mt.L1MissTimeFrac < 0 || mt.L1MissTimeFrac > 1 ||
				mt.DRAMTimeFrac < 0 || mt.DRAMTimeFrac > 1 {
				return false
			}
			if mt.L1MissTimeFrac+mt.DRAMTimeFrac > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMoreMissesMoreTime(t *testing.T) {
	// Monotonicity: with everything else equal, more L2 misses must not
	// decrease modelled DRAM stall fraction.
	f := func(l2a, l2b uint16) bool {
		base := cache.Stats{Loads: 1_000_000, Ops: 1_000_000, L1Misses: 70000}
		a, b := base, base
		a.L2Misses = uint64(l2a) % 60000
		b.L2Misses = uint64(l2b) % 60000
		if a.L2Misses > b.L2Misses {
			a, b = b, a
		}
		m := O2R12K1MB()
		return Compute(m, a).DRAMTimeFrac <= Compute(m, b).DRAMTimeFrac+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("Table X. Test")
	mt := Compute(O2R12K1MB(), cache.Stats{
		Loads: 1000, Stores: 200, L1Misses: 12, L2Misses: 3, Ops: 5000,
		Prefetches: 10, PrefetchL1Hits: 4,
	})
	tab.AddColumn("720x576 R12K 1MB", mt)
	out := tab.String()
	for _, want := range []string{"Table X. Test", "L1C miss rate", "DRAM time", "720x576 R12K 1MB", "prefetch L1C miss"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
	if len(tab.Columns) != 1 {
		t.Fatal("column count wrong")
	}
}

func TestRowValueUnknown(t *testing.T) {
	mt := Metrics{}
	if mt.RowValue("no such row") != "?" {
		t.Error("unknown row should render '?'")
	}
}

func TestSeriesWrite(t *testing.T) {
	s := Series{Label: "L2 miss rate", X: []string{"720x576", "1024x768"}, Y: []float64{0.3, 0.2}, YUnit: "%"}
	var sb strings.Builder
	s.Write(&sb)
	if !strings.Contains(sb.String(), "720x576") || !strings.Contains(sb.String(), "#") {
		t.Errorf("series rendering wrong:\n%s", sb.String())
	}
}

func TestHumanSize(t *testing.T) {
	if humanSize(1<<20) != "1MB" || humanSize(32<<10) != "32KB" || humanSize(100) != "100B" {
		t.Error("humanSize wrong")
	}
}

func TestBreakdownSumsToOne(t *testing.T) {
	m := O2R12K1MB()
	s := cache.Stats{Loads: 1_000_000, Stores: 100_000, Ops: 2_000_000,
		L1Misses: 5000, L2Misses: 800}
	mt := Compute(m, s)
	sum := mt.IssueTimeFrac + mt.L1MissTimeFrac + mt.DRAMTimeFrac
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("breakdown fractions sum to %v", sum)
	}
	if !strings.Contains(mt.Breakdown(), "issue") {
		t.Fatal("Breakdown string malformed")
	}
}
