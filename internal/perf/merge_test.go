package perf

import (
	"reflect"
	"testing"

	"repro/internal/cache"
)

func TestMergeSeriesConcatenatesInChunkOrder(t *testing.T) {
	mk := func(label string, xs []string, ys []float64) Series {
		return Series{Label: label, YUnit: "%", X: xs, Y: ys}
	}
	chunk0 := []Series{mk("a", []string{"x0"}, []float64{1}), mk("b", []string{"x0"}, []float64{10})}
	chunk1 := []Series{mk("a", []string{"x1", "x2"}, []float64{2, 3}), mk("b", []string{"x1", "x2"}, []float64{20, 30})}
	got, err := MergeSeries(chunk0, chunk1)
	if err != nil {
		t.Fatal(err)
	}
	want := []Series{
		mk("a", []string{"x0", "x1", "x2"}, []float64{1, 2, 3}),
		mk("b", []string{"x0", "x1", "x2"}, []float64{10, 20, 30}),
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %+v\nwant %+v", got, want)
	}
}

func TestMergeSeriesRejectsMismatchedShards(t *testing.T) {
	a := []Series{{Label: "a", YUnit: "%", X: []string{"x"}, Y: []float64{1}}}
	b := []Series{{Label: "other", YUnit: "%", X: []string{"x"}, Y: []float64{1}}}
	if _, err := MergeSeries(a, b); err == nil {
		t.Fatal("label mismatch not rejected")
	}
	c := []Series{a[0], a[0]}
	if _, err := MergeSeries(a, c); err == nil {
		t.Fatal("length mismatch not rejected")
	}
	ragged := []Series{{Label: "a", YUnit: "%", X: []string{"x", "y"}, Y: []float64{1}}}
	if _, err := MergeSeries(ragged); err == nil {
		t.Fatal("ragged x/y not rejected")
	}
}

func TestMergeSeriesEmpty(t *testing.T) {
	got, err := MergeSeries()
	if err != nil || got != nil {
		t.Fatalf("empty merge: %v %v", got, err)
	}
}

func TestSeriesAppend(t *testing.T) {
	var s Series
	s.Append("a", 1)
	s.Append("b", 2)
	if !reflect.DeepEqual(s.X, []string{"a", "b"}) || !reflect.DeepEqual(s.Y, []float64{1, 2}) {
		t.Fatalf("append: %+v", s)
	}
}

func TestMergeMetricsEqualsComputeOnSummedCounters(t *testing.T) {
	m := O2R12K1MB()
	s1 := cache.Stats{Loads: 1000, Stores: 200, L1Misses: 50, L2Misses: 5, L1Writebacks: 10, L2Writebacks: 2}
	s2 := cache.Stats{Loads: 3000, Stores: 700, L1Misses: 80, L2Misses: 9, L1Writebacks: 30, L2Writebacks: 4}
	merged := MergeMetrics(m, Compute(m, s1), Compute(m, s2))
	direct := Compute(m, s1.Add(s2))
	if !reflect.DeepEqual(merged, direct) {
		t.Fatalf("merged %+v\ndirect %+v", merged, direct)
	}
	if sum := SumStats(Compute(m, s1), Compute(m, s2)); sum != s1.Add(s2) {
		t.Fatalf("SumStats %+v", sum)
	}
}
