package perf

import (
	"fmt"
	"io"
	"strings"
)

// MetricRows is the row order of the paper's Tables 2–7.
var MetricRows = []string{
	"L1C miss rate",
	"L1C miss time",
	"L1C line reuse",
	"L2C miss rate",
	"L2C line reuse",
	"DRAM time",
	"L1-L2 b/w (MB/s)",
	"L2-DRAM b/w (MB/s)",
	"prefetch L1C miss",
}

// RowValue formats the named metric row for one column.
func (mt Metrics) RowValue(row string) string {
	switch row {
	case "L1C miss rate":
		return fmt.Sprintf("%.2f%%", mt.L1MissRate*100)
	case "L1C miss time":
		return fmt.Sprintf("%.2f%%", mt.L1MissTimeFrac*100)
	case "L1C line reuse":
		return fmt.Sprintf("%.1f", mt.L1LineReuse)
	case "L2C miss rate":
		return fmt.Sprintf("%.2f%%", mt.L2MissRate*100)
	case "L2C line reuse":
		return fmt.Sprintf("%.1f", mt.L2LineReuse)
	case "DRAM time":
		return fmt.Sprintf("%.1f%%", mt.DRAMTimeFrac*100)
	case "L1-L2 b/w (MB/s)":
		return fmt.Sprintf("%.1f", mt.L1L2MBps)
	case "L2-DRAM b/w (MB/s)":
		return fmt.Sprintf("%.1f", mt.L2DRAMMBps)
	case "prefetch L1C miss":
		return mt.PrefetchL1MissString()
	default:
		return "?"
	}
}

// Table is a formatted experiment table in the paper's layout: metric
// rows by machine/resolution columns.
type Table struct {
	Title   string
	Columns []string // e.g. "720x576 R12K 1MB"
	Cells   map[string][]string
	Rows    []string
}

// NewTable creates an empty table with the standard metric rows.
func NewTable(title string) *Table {
	return &Table{
		Title: title,
		Cells: make(map[string][]string),
		Rows:  append([]string(nil), MetricRows...),
	}
}

// AddColumn appends one result column.
func (t *Table) AddColumn(label string, mt Metrics) {
	t.Columns = append(t.Columns, label)
	for _, row := range t.Rows {
		t.Cells[row] = append(t.Cells[row], mt.RowValue(row))
	}
}

// AddCustomColumn appends a column of preformatted cells (used by
// Table 8, whose rows differ from the standard metric set).
func (t *Table) AddCustomColumn(label string, cells map[string]string) {
	t.Columns = append(t.Columns, label)
	for _, row := range t.Rows {
		t.Cells[row] = append(t.Cells[row], cells[row])
	}
}

// Write renders the table as aligned text.
func (t *Table) Write(w io.Writer) {
	widths := make([]int, len(t.Columns)+1)
	widths[0] = len("metrics")
	for _, r := range t.Rows {
		if len(r) > widths[0] {
			widths[0] = len(r)
		}
	}
	for i, c := range t.Columns {
		widths[i+1] = len(c)
		for _, r := range t.Rows {
			if cells := t.Cells[r]; i < len(cells) && len(cells[i]) > widths[i+1] {
				widths[i+1] = len(cells[i])
			}
		}
	}
	fmt.Fprintf(w, "%s\n", t.Title)
	fmt.Fprintf(w, "%-*s", widths[0], "metrics")
	for i, c := range t.Columns {
		fmt.Fprintf(w, "  %*s", widths[i+1], c)
	}
	fmt.Fprintln(w)
	total := widths[0]
	for _, wd := range widths[1:] {
		total += wd + 2
	}
	fmt.Fprintln(w, strings.Repeat("-", total))
	for _, r := range t.Rows {
		fmt.Fprintf(w, "%-*s", widths[0], r)
		for i := range t.Columns {
			cell := ""
			if cells := t.Cells[r]; i < len(cells) {
				cell = cells[i]
			}
			fmt.Fprintf(w, "  %*s", widths[i+1], cell)
		}
		fmt.Fprintln(w)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	t.Write(&sb)
	return sb.String()
}

// Series is a labelled data series for the paper's figures.
type Series struct {
	Label  string
	XLabel string
	X      []string
	Y      []float64
	YUnit  string
}

// Write renders the series as aligned "x y" text plus a crude ASCII bar
// chart, which is how the harness "draws" the paper's figures.
func (s Series) Write(w io.Writer) {
	fmt.Fprintf(w, "%s (%s)\n", s.Label, s.YUnit)
	maxY := 0.0
	for _, y := range s.Y {
		if y > maxY {
			maxY = y
		}
	}
	for i, x := range s.X {
		bar := 0
		if maxY > 0 {
			bar = int(s.Y[i] / maxY * 40)
		}
		fmt.Fprintf(w, "  %-16s %10.4f %s\n", x, s.Y[i], strings.Repeat("#", bar))
	}
}
