package perf

import (
	"fmt"

	"repro/internal/cache"
)

// This file holds the aggregation helpers the experiment farm uses to
// reassemble sharded parallel runs into the exact artifacts a serial
// run produces: series built point-by-point by independent jobs, and
// metrics recomputed over summed raw counters.

// Append adds one (x, y) point to the series.
func (s *Series) Append(x string, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// MergeSeries reassembles series groups produced by parallel shards.
// Each chunk is the series group one shard produced (same series, in
// the same order, holding that shard's points); the result concatenates
// the points in chunk order, so merging shards of a sweep yields the
// identical series a serial sweep builds. Labels and units must agree
// across chunks — a mismatch means the shards were not slices of the
// same experiment, and is an error.
func MergeSeries(chunks ...[]Series) ([]Series, error) {
	var out []Series
	for ci, chunk := range chunks {
		if out == nil {
			out = make([]Series, len(chunk))
			for i, s := range chunk {
				out[i] = Series{Label: s.Label, XLabel: s.XLabel, YUnit: s.YUnit}
			}
		}
		if len(chunk) != len(out) {
			return nil, fmt.Errorf("perf: merge chunk %d has %d series, want %d", ci, len(chunk), len(out))
		}
		for i, s := range chunk {
			if s.Label != out[i].Label || s.YUnit != out[i].YUnit || s.XLabel != out[i].XLabel {
				return nil, fmt.Errorf("perf: merge chunk %d series %d is %q (%s, x %q), want %q (%s, x %q)",
					ci, i, s.Label, s.YUnit, s.XLabel, out[i].Label, out[i].YUnit, out[i].XLabel)
			}
			if len(s.X) != len(s.Y) {
				return nil, fmt.Errorf("perf: merge chunk %d series %q has %d x vs %d y", ci, s.Label, len(s.X), len(s.Y))
			}
			out[i].X = append(out[i].X, s.X...)
			out[i].Y = append(out[i].Y, s.Y...)
		}
	}
	return out, nil
}

// SumStats adds up the raw counter sets of parts. Counters are additive
// across independent runs (each run traces disjoint simulated work), so
// the sum is the counter set of the combined workload.
func SumStats(parts ...Metrics) cache.Stats {
	var s cache.Stats
	for _, p := range parts {
		s = s.Add(p.Raw)
	}
	return s
}

// MergeMetrics recomputes machine-m metrics over the combined raw
// counters of parts — the aggregate view of a sharded sweep (rates and
// bandwidths of the union workload, not averages of per-shard rates).
func MergeMetrics(m Machine, parts ...Metrics) Metrics {
	return Compute(m, SumStats(parts...))
}
