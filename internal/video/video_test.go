package video

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/simmem"
)

func TestNewFrameGeometry(t *testing.T) {
	sp := simmem.NewSpace(0)
	f := NewFrame(sp, 720, 576)
	if f.Y.W != 720 || f.Y.H != 576 {
		t.Fatalf("luma %dx%d", f.Y.W, f.Y.H)
	}
	if f.Cb.W != 360 || f.Cb.H != 288 || f.Cr.W != 360 || f.Cr.H != 288 {
		t.Fatal("chroma not 4:2:0 subsampled")
	}
	if f.Bytes() != 720*576*3/2 {
		t.Fatalf("frame bytes %d want %d", f.Bytes(), 720*576*3/2)
	}
	// Distinct simulated address ranges per plane.
	if f.Y.Addr == f.Cb.Addr || f.Cb.Addr == f.Cr.Addr {
		t.Fatal("planes share simulated addresses")
	}
}

func TestOddFramePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("odd dimensions must panic")
		}
	}()
	NewFrame(simmem.NewSpace(0), 721, 576)
}

func TestPlaneAddressing(t *testing.T) {
	sp := simmem.NewSpace(0)
	p := NewPlane(sp, 16, 8)
	p.Set(3, 2, 77)
	if p.At(3, 2) != 77 {
		t.Fatal("Set/At mismatch")
	}
	if p.PixAddr(3, 2) != p.Addr+2*16+3 {
		t.Fatal("PixAddr wrong")
	}
	if p.Addr%simmem.PageSize != 0 {
		t.Fatal("plane not page aligned")
	}
	row := p.Row(2)
	if row[3] != 77 {
		t.Fatal("Row slice wrong")
	}
}

func TestPSNRIdentical(t *testing.T) {
	sp := simmem.NewSpace(0)
	s := NewSynth(64, 64, 1)
	a := NewFrame(sp, 64, 64)
	b := NewFrame(sp, 64, 64)
	s.RenderScene(a, 0)
	b.CopyFrom(a)
	if !math.IsInf(PSNR(a, b), 1) {
		t.Fatal("identical frames must have infinite PSNR")
	}
	if MeanAbsDiff(a, b) != 0 {
		t.Fatal("identical frames must have zero MAD")
	}
}

func TestPSNRDegrades(t *testing.T) {
	sp := simmem.NewSpace(0)
	s := NewSynth(64, 64, 1)
	a := NewFrame(sp, 64, 64)
	b := NewFrame(sp, 64, 64)
	s.RenderScene(a, 0)
	b.CopyFrom(a)
	for i := 0; i < 64; i++ {
		b.Y.Pix[i] ^= 0x10
	}
	p1 := PSNR(a, b)
	for i := 64; i < 1024; i++ {
		b.Y.Pix[i] ^= 0x20
	}
	p2 := PSNR(a, b)
	if !(p2 < p1) {
		t.Fatalf("PSNR did not degrade with more error: %v -> %v", p1, p2)
	}
}

func TestSynthDeterminism(t *testing.T) {
	sp := simmem.NewSpace(0)
	a := NewFrame(sp, 128, 96)
	b := NewFrame(sp, 128, 96)
	NewSynth(128, 96, 42).RenderScene(a, 7)
	NewSynth(128, 96, 42).RenderScene(b, 7)
	for i := range a.Y.Pix {
		if a.Y.Pix[i] != b.Y.Pix[i] {
			t.Fatal("same seed produced different frames")
		}
	}
	NewSynth(128, 96, 43).RenderScene(b, 7)
	diff := false
	for i := range a.Y.Pix {
		if a.Y.Pix[i] != b.Y.Pix[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical frames")
	}
}

func TestSynthMotionCoherence(t *testing.T) {
	// Consecutive frames must be similar (small MAD) but not identical —
	// the property motion estimation depends on.
	sp := simmem.NewSpace(0)
	s := NewSynth(128, 96, 1)
	f0 := NewFrame(sp, 128, 96)
	f1 := NewFrame(sp, 128, 96)
	s.RenderScene(f0, 0)
	s.RenderScene(f1, 1)
	mad := MeanAbsDiff(f0, f1)
	if mad == 0 {
		t.Fatal("consecutive frames identical: no motion")
	}
	if mad > 40 {
		t.Fatalf("consecutive frames too different (MAD %.1f): motion incoherent", mad)
	}
}

func TestRenderObjectAlpha(t *testing.T) {
	sp := simmem.NewSpace(0)
	s := NewSynth(128, 96, 1)
	f := NewAlphaFrame(sp, 128, 96)
	s.RenderObject(f, 0, 0)
	in, out := 0, 0
	for _, a := range f.Alpha.Pix {
		switch a {
		case 255:
			in++
		case 0:
			out++
		default:
			t.Fatal("alpha must be binary")
		}
	}
	if in == 0 || out == 0 {
		t.Fatalf("degenerate alpha mask: in=%d out=%d", in, out)
	}
	// Object support should move between frames.
	f2 := NewAlphaFrame(sp, 128, 96)
	s.RenderObject(f2, 0, 5)
	moved := false
	for i := range f.Alpha.Pix {
		if f.Alpha.Pix[i] != f2.Alpha.Pix[i] {
			moved = true
			break
		}
	}
	if !moved {
		t.Fatal("object did not move")
	}
}

func TestRenderBackgroundFullSupport(t *testing.T) {
	sp := simmem.NewSpace(0)
	s := NewSynth(64, 64, 1)
	f := NewAlphaFrame(sp, 64, 64)
	s.RenderBackground(f, 0)
	for _, a := range f.Alpha.Pix {
		if a != 255 {
			t.Fatal("background alpha must be full")
		}
	}
}

func TestSequenceHelpers(t *testing.T) {
	sp := simmem.NewSpace(0)
	s := NewSynth(64, 64, 9)
	frames := s.Sequence(sp, 4)
	if len(frames) != 4 {
		t.Fatal("Sequence length")
	}
	for i, f := range frames {
		if f.TimeIndex != i {
			t.Fatalf("frame %d has TimeIndex %d", i, f.TimeIndex)
		}
	}
	objs := s.ObjectSequence(sp, 1, 3)
	if len(objs) != 3 || objs[0].Alpha == nil {
		t.Fatal("ObjectSequence missing alpha")
	}
	bg := s.ObjectSequence(sp, -1, 2)
	if bg[0].ObjectName != "background" {
		t.Fatal("background name wrong")
	}
}

func TestBounceStaysInRange(t *testing.T) {
	f := func(v float64) bool {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
		got := bounce(v, 100)
		return got >= 0 && got <= 100
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestClamp255(t *testing.T) {
	if clamp255(-5) != 0 || clamp255(300) != 255 || clamp255(99) != 99 {
		t.Fatal("clamp255 wrong")
	}
}

func TestCopyFromMismatchPanics(t *testing.T) {
	sp := simmem.NewSpace(0)
	a := NewPlane(sp, 8, 8)
	b := NewPlane(sp, 16, 8)
	defer func() {
		if recover() == nil {
			t.Fatal("size mismatch must panic")
		}
	}()
	a.CopyFrom(b)
}

func TestBBoxNilAlphaIsFullFrame(t *testing.T) {
	x0, y0, x1, y1 := BBox(nil, 64, 48)
	if x0 != 0 || y0 != 0 || x1 != 64 || y1 != 48 {
		t.Fatalf("nil alpha bbox = %d,%d,%d,%d", x0, y0, x1, y1)
	}
}

func TestBBoxEmptySupport(t *testing.T) {
	sp := simmem.NewSpace(0)
	a := NewPlane(sp, 64, 48)
	x0, y0, x1, y1 := BBox(a, 64, 48)
	if x0 != 0 || y0 != 0 || x1 != 0 || y1 != 0 {
		t.Fatalf("empty alpha bbox = %d,%d,%d,%d", x0, y0, x1, y1)
	}
}

func TestBBoxMacroblockAligned(t *testing.T) {
	sp := simmem.NewSpace(0)
	a := NewPlane(sp, 64, 48)
	a.Set(20, 18, 255)
	a.Set(37, 30, 255)
	x0, y0, x1, y1 := BBox(a, 64, 48)
	if x0 != 16 || y0 != 16 || x1 != 48 || y1 != 32 {
		t.Fatalf("bbox = %d,%d,%d,%d want 16,16,48,32", x0, y0, x1, y1)
	}
	if x0%16 != 0 || y0%16 != 0 || x1%16 != 0 || y1%16 != 0 {
		t.Fatal("bbox not macroblock aligned")
	}
}

func TestBBoxFullSupport(t *testing.T) {
	sp := simmem.NewSpace(0)
	a := NewPlane(sp, 64, 48)
	a.Fill(255)
	x0, y0, x1, y1 := BBox(a, 64, 48)
	if x0 != 0 || y0 != 0 || x1 != 64 || y1 != 48 {
		t.Fatalf("full alpha bbox = %d,%d,%d,%d", x0, y0, x1, y1)
	}
}

func TestBBoxClampsToFrame(t *testing.T) {
	sp := simmem.NewSpace(0)
	a := NewPlane(sp, 40, 40) // not multiples of 16
	a.Set(39, 39, 255)
	_, _, x1, y1 := BBox(a, 40, 40)
	if x1 > 40 || y1 > 40 {
		t.Fatalf("bbox exceeds frame: %d,%d", x1, y1)
	}
}
