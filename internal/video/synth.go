package video

import (
	"math"

	"repro/internal/simmem"
)

// Synth generates a deterministic synthetic video scene: a textured
// background plus moving textured elliptical objects. It substitutes for
// the paper's 30-frame PAL sequences (which are not available): motion
// estimation needs textured content with coherent inter-frame motion,
// shape coding needs binary alpha masks, and both are provided here from
// a seeded generator so every experiment is reproducible bit for bit.
type Synth struct {
	W, H    int
	Seed    int64
	Objects []SynthObject

	noise []byte // tileable texture noise, 256x256
}

// SynthObject is one moving ellipse in the scene.
type SynthObject struct {
	CX, CY float64 // centre at frame 0, as a fraction of frame size
	RX, RY float64 // radii, as a fraction of frame size
	VX, VY float64 // velocity in pixels/frame
	Luma   byte    // base luma
	Cb, Cr byte    // chroma
	Tex    byte    // texture amplitude
}

// DefaultObjects returns the three-object scene used by the multi-VO
// experiments (paper Section 3.2, Tables 4–7): two moving foreground
// ellipses over a full-frame background object.
func DefaultObjects() []SynthObject {
	return []SynthObject{
		{CX: 0.30, CY: 0.40, RX: 0.12, RY: 0.18, VX: 2.5, VY: 1.0, Luma: 190, Cb: 100, Cr: 160, Tex: 28},
		{CX: 0.65, CY: 0.55, RX: 0.15, RY: 0.12, VX: -1.5, VY: 2.0, Luma: 90, Cb: 160, Cr: 90, Tex: 36},
	}
}

// NewSynth creates a generator for w×h frames.
func NewSynth(w, h int, seed int64) *Synth {
	s := &Synth{W: w, H: h, Seed: seed, Objects: DefaultObjects()}
	s.noise = make([]byte, 256*256)
	// Small deterministic LCG for the texture tile.
	x := uint64(seed)*6364136223846793005 + 1442695040888963407
	for i := range s.noise {
		x = x*6364136223846793005 + 1442695040888963407
		s.noise[i] = byte(x >> 56)
	}
	return s
}

// noiseAt samples the texture tile.
func (s *Synth) noiseAt(x, y int) byte {
	return s.noise[(y&255)<<8|(x&255)]
}

// bgLuma computes the background texture: a slow gradient plus tiled
// noise, with a gentle global pan so the background also has motion.
func (s *Synth) bgLuma(x, y, t int) byte {
	px, py := x+t, y+t/2 // background pan: 1 px/frame horizontally
	v := 110 + ((px*3+py*2)>>4)&31 + int(s.noiseAt(px, py)>>3)
	return clamp255(v)
}

// RenderScene composes the full scene (background plus all objects) for
// display-order frame t into dst. dst must be W×H.
func (s *Synth) RenderScene(dst *Frame, t int) {
	s.renderInto(dst, t, -1, false)
	dst.TimeIndex = t
	dst.ObjectName = "scene"
}

// RenderObject renders visual object obj (0-based index into Objects)
// for frame t into dst, filling dst.Alpha with the binary support mask.
// dst must have an alpha plane.
func (s *Synth) RenderObject(dst *Frame, obj, t int) {
	if dst.Alpha == nil {
		panic("video: RenderObject requires an alpha frame")
	}
	s.renderInto(dst, t, obj, true)
	dst.TimeIndex = t
	dst.ObjectName = objName(obj)
}

// RenderBackground renders the background object (full-frame support).
func (s *Synth) RenderBackground(dst *Frame, t int) {
	s.renderInto(dst, t, -1, true)
	if dst.Alpha != nil {
		dst.Alpha.Fill(255)
	}
	dst.TimeIndex = t
	dst.ObjectName = "background"
}

func objName(i int) string {
	names := []string{"object-A", "object-B", "object-C", "object-D"}
	if i >= 0 && i < len(names) {
		return names[i]
	}
	return "object"
}

// renderInto does the work. obj == -1 with onlyObj=false composes the
// whole scene; obj == -1 with onlyObj=true renders background only;
// obj >= 0 with onlyObj=true renders that object against mid grey with
// alpha.
func (s *Synth) renderInto(dst *Frame, t, obj int, onlyObj bool) {
	type objPos struct {
		cx, cy, rx, ry float64
		o              SynthObject
	}
	var objs []objPos
	for i, o := range s.Objects {
		if onlyObj && obj >= 0 && i != obj {
			continue
		}
		cx := o.CX*float64(s.W) + o.VX*float64(t)
		cy := o.CY*float64(s.H) + o.VY*float64(t)
		// Bounce inside the frame so long sequences stay in view.
		cx = bounce(cx, float64(s.W))
		cy = bounce(cy, float64(s.H))
		objs = append(objs, objPos{cx, cy, o.RX * float64(s.W), o.RY * float64(s.H), o})
	}
	bgOnly := onlyObj && obj == -1
	soloObj := onlyObj && obj >= 0

	for y := 0; y < dst.H; y++ {
		row := dst.Y.Row(y)
		var arow []byte
		if dst.Alpha != nil {
			arow = dst.Alpha.Row(y)
		}
		for x := 0; x < dst.W; x++ {
			var v byte
			inObj := false
			if !bgOnly {
				for _, op := range objs {
					dx := (float64(x) - op.cx) / op.rx
					dy := (float64(y) - op.cy) / op.ry
					if dx*dx+dy*dy <= 1 {
						// Object texture moves with the object.
						tx := x - int(op.cx)
						ty := y - int(op.cy)
						v = clamp255(int(op.o.Luma) + int(s.noiseAt(tx*2, ty*2)>>2) - int(op.o.Tex)/2 + int(float64(op.o.Tex)*dx*dy*0.5))
						inObj = true
						break
					}
				}
			}
			if !inObj {
				if soloObj {
					v = 128 // object rendered against neutral grey
				} else {
					v = s.bgLuma(x, y, t)
				}
			}
			row[x] = v
			if arow != nil {
				if soloObj {
					if inObj {
						arow[x] = 255
					} else {
						arow[x] = 0
					}
				} else {
					arow[x] = 255
				}
			}
		}
	}
	// Chroma: cheap but consistent with luma structure.
	for y := 0; y < dst.H/2; y++ {
		cbRow := dst.Cb.Row(y)
		crRow := dst.Cr.Row(y)
		for x := 0; x < dst.W/2; x++ {
			cb, cr := byte(128), byte(128)
			if !bgOnly {
				for _, op := range objs {
					dx := (float64(2*x) - op.cx) / op.rx
					dy := (float64(2*y) - op.cy) / op.ry
					if dx*dx+dy*dy <= 1 {
						cb, cr = op.o.Cb, op.o.Cr
						break
					}
				}
			}
			cbRow[x] = cb
			crRow[x] = cr
		}
	}
}

func bounce(v, limit float64) float64 {
	period := 2 * limit
	v = math.Mod(v, period)
	if v < 0 {
		v += period
	}
	if v > limit {
		v = period - v
	}
	return v
}

func clamp255(v int) byte {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return byte(v)
}

// Sequence pre-renders n display-order frames of the composed scene into
// newly allocated frames in space.
func (s *Synth) Sequence(space *simmem.Space, n int) []*Frame {
	frames := make([]*Frame, n)
	for t := 0; t < n; t++ {
		f := NewFrame(space, s.W, s.H)
		s.RenderScene(f, t)
		frames[t] = f
	}
	return frames
}

// ObjectSequence pre-renders n display-order frames of one visual object
// (with alpha) into space. obj == -1 renders the background object.
func (s *Synth) ObjectSequence(space *simmem.Space, obj, n int) []*Frame {
	frames := make([]*Frame, n)
	for t := 0; t < n; t++ {
		f := NewAlphaFrame(space, s.W, s.H)
		if obj < 0 {
			s.RenderBackground(f, t)
		} else {
			s.RenderObject(f, obj, t)
		}
		frames[t] = f
	}
	return frames
}
