// Package video provides YUV 4:2:0 frame storage bound to the simulated
// address space, binary alpha planes for arbitrary-shape visual objects,
// and a deterministic synthetic scene generator that substitutes for the
// paper's PAL test sequences.
package video

import (
	"fmt"
	"math"

	"repro/internal/simmem"
)

// Plane is a rectangular 8-bit sample plane. Pix holds H rows of Stride
// bytes; Addr is the plane's base in the simulated address space, so the
// codec can report the addresses of its pixel accesses.
type Plane struct {
	W, H   int
	Stride int
	Pix    []byte
	Addr   uint64
}

// NewPlane allocates a plane of w×h samples in space (page aligned, like
// a large malloc on IRIX). Stride equals w.
func NewPlane(space *simmem.Space, w, h int) *Plane {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("video: invalid plane size %dx%d", w, h))
	}
	return &Plane{
		W: w, H: h, Stride: w,
		Pix:  make([]byte, w*h),
		Addr: space.AllocPage(w * h),
	}
}

// At returns the sample at (x, y). Bounds are the caller's concern; the
// codec only addresses padded planes in range.
func (p *Plane) At(x, y int) byte { return p.Pix[y*p.Stride+x] }

// Set stores a sample at (x, y).
func (p *Plane) Set(x, y int, v byte) { p.Pix[y*p.Stride+x] = v }

// PixAddr returns the simulated address of sample (x, y).
func (p *Plane) PixAddr(x, y int) uint64 {
	return p.Addr + uint64(y*p.Stride+x)
}

// Row returns the y'th row slice.
func (p *Plane) Row(y int) []byte { return p.Pix[y*p.Stride : y*p.Stride+p.W] }

// Fill sets every sample to v.
func (p *Plane) Fill(v byte) {
	for i := range p.Pix {
		p.Pix[i] = v
	}
}

// CopyFrom copies the sample data of src (same dimensions required).
func (p *Plane) CopyFrom(src *Plane) {
	if p.W != src.W || p.H != src.H {
		panic(fmt.Sprintf("video: CopyFrom size mismatch %dx%d vs %dx%d", p.W, p.H, src.W, src.H))
	}
	copy(p.Pix, src.Pix)
}

// Frame is a YUV 4:2:0 picture. Chroma planes are half size in both
// dimensions. Luma dimensions must be even.
type Frame struct {
	W, H       int
	Y, Cb, Cr  *Plane
	Alpha      *Plane // nil for rectangular (full-frame) VOPs
	TimeIndex  int    // display-order index
	ObjectName string // which VO this frame belongs to (diagnostics)
}

// NewFrame allocates a rectangular frame in space.
func NewFrame(space *simmem.Space, w, h int) *Frame {
	if w%2 != 0 || h%2 != 0 {
		panic(fmt.Sprintf("video: frame size %dx%d must be even", w, h))
	}
	return &Frame{
		W: w, H: h,
		Y:  NewPlane(space, w, h),
		Cb: NewPlane(space, w/2, h/2),
		Cr: NewPlane(space, w/2, h/2),
	}
}

// NewAlphaFrame allocates a frame with a binary alpha plane (0 or 255)
// for arbitrary-shape visual objects.
func NewAlphaFrame(space *simmem.Space, w, h int) *Frame {
	f := NewFrame(space, w, h)
	f.Alpha = NewPlane(space, w, h)
	return f
}

// Bytes returns the total sample storage of the frame.
func (f *Frame) Bytes() int {
	n := len(f.Y.Pix) + len(f.Cb.Pix) + len(f.Cr.Pix)
	if f.Alpha != nil {
		n += len(f.Alpha.Pix)
	}
	return n
}

// CopyFrom copies all sample data from src.
func (f *Frame) CopyFrom(src *Frame) {
	f.Y.CopyFrom(src.Y)
	f.Cb.CopyFrom(src.Cb)
	f.Cr.CopyFrom(src.Cr)
	if f.Alpha != nil && src.Alpha != nil {
		f.Alpha.CopyFrom(src.Alpha)
	}
	f.TimeIndex = src.TimeIndex
}

// PSNR returns the luma peak signal-to-noise ratio between two frames in
// dB, +Inf for identical planes. It is the standard quality check for
// codec roundtrips.
func PSNR(a, b *Frame) float64 {
	if a.W != b.W || a.H != b.H {
		panic("video: PSNR size mismatch")
	}
	var sse float64
	for y := 0; y < a.H; y++ {
		ra, rb := a.Y.Row(y), b.Y.Row(y)
		for x := range ra {
			d := float64(int(ra[x]) - int(rb[x]))
			sse += d * d
		}
	}
	if sse == 0 {
		return math.Inf(1)
	}
	mse := sse / float64(a.W*a.H)
	return 10 * math.Log10(255*255/mse)
}

// MeanAbsDiff returns the mean absolute luma difference between frames.
func MeanAbsDiff(a, b *Frame) float64 {
	if a.W != b.W || a.H != b.H {
		panic("video: MeanAbsDiff size mismatch")
	}
	var sum float64
	for y := 0; y < a.H; y++ {
		ra, rb := a.Y.Row(y), b.Y.Row(y)
		for x := range ra {
			d := int(ra[x]) - int(rb[x])
			if d < 0 {
				d = -d
			}
			sum += float64(d)
		}
	}
	return sum / float64(a.W*a.H)
}

// BBox returns the bounding box (x0, y0, x1, y1; x1/y1 exclusive) of the
// nonzero support of an alpha plane, expanded to macroblock (16 px)
// alignment. A nil plane or full support returns the full rectangle; an
// empty support returns a zero-area box at the origin.
func BBox(alpha *Plane, w, h int) (int, int, int, int) {
	if alpha == nil {
		return 0, 0, w, h
	}
	x0, y0, x1, y1 := w, h, 0, 0
	for y := 0; y < alpha.H; y++ {
		row := alpha.Row(y)
		for x, v := range row {
			if v == 0 {
				continue
			}
			if x < x0 {
				x0 = x
			}
			if x >= x1 {
				x1 = x + 1
			}
			if y < y0 {
				y0 = y
			}
			y1 = y + 1
		}
	}
	if x1 <= x0 || y1 <= y0 {
		return 0, 0, 0, 0
	}
	x0 = x0 &^ 15
	y0 = y0 &^ 15
	x1 = (x1 + 15) &^ 15
	y1 = (y1 + 15) &^ 15
	if x1 > w {
		x1 = w
	}
	if y1 > h {
		y1 = h
	}
	return x0, y0, x1, y1
}
